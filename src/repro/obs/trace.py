"""Span tracing and the kernel flight recorder.

:class:`SpanTracer` records **nested wall-time spans** — coarse phases of
a run (build states, event loop, shard execute, merge), not per-event
timings — and exports them as Chrome ``trace_event`` JSON, the format the
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ viewers
open directly.  Spans are "complete" (``ph: "X"``) events carrying a
microsecond timestamp and duration; properly nested spans on one ``tid``
render as a flame graph with no begin/end pairing needed.  A multi-process
fleet run adopts each worker's spans under its own ``pid``, so the
Perfetto view shows the parent's partition/execute/merge phases above one
lane of spans per shard worker.

:class:`FlightRecorder` is the crash-time counterpart: a bounded ring of
the most recent kernel events (time, kind, sequence).  Appending a tuple
to a ``deque`` is cheap enough for the event loop's hot path when
observability is on; when a handler raises, the fleet dumps the ring to
the log — the last N events before the failure, in order — instead of
leaving a ``processes=4`` run to die as a black box.
"""

from __future__ import annotations

import time as _time
from collections import deque
from typing import Dict, List, Optional, Sequence


class Span:
    """One open span; records its duration on ``close()``.

    ``args`` is a mutable dict — handlers can attach counters to the open
    span (``span.args["events"] = n``) and they ride along into the trace.
    """

    __slots__ = ("name", "cat", "args", "_tracer", "_start")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, args: Optional[Dict]):
        self.name = name
        self.cat = cat
        self.args = dict(args) if args else {}
        self._tracer = tracer
        self._start = _time.perf_counter()

    @property
    def seconds(self) -> float:
        """Wall time elapsed since the span opened."""
        return _time.perf_counter() - self._start

    def close(self) -> float:
        duration = _time.perf_counter() - self._start
        self._tracer._record(self.name, self.cat, self._start, duration, self.args)
        return duration

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SpanTracer:
    """Collects spans and instants; exports Chrome ``trace_event`` JSON."""

    __slots__ = ("_events", "_origin", "_pid_names")

    def __init__(self) -> None:
        # The origin anchors perf_counter offsets at zero so trace
        # timestamps are small and stable across runs of equal shape.
        self._origin = _time.perf_counter()
        self._events: List[Dict[str, object]] = []
        self._pid_names: Dict[int, str] = {0: "main"}

    def span(self, name: str, cat: str = "repro", args: Optional[Dict] = None) -> Span:
        """Open a span; use as a context manager or ``close()`` explicitly."""
        return Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "repro", args: Optional[Dict] = None) -> None:
        """Record a zero-duration marker event."""
        self._events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": round((_time.perf_counter() - self._origin) * 1e6, 3),
                "pid": 0,
                "tid": 0,
                "s": "p",
                "args": dict(args) if args else {},
            }
        )

    def _record(self, name: str, cat: str, start: float, duration: float, args: Dict) -> None:
        self._events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": round((start - self._origin) * 1e6, 3),
                "dur": round(duration * 1e6, 3),
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )

    def adopt(self, events: Sequence[Dict[str, object]], pid: int, name: str = "") -> None:
        """Fold another process's exported events in under process *pid*.

        Worker timestamps come from that worker's own ``perf_counter``
        origin — comparable within the pid's lane, not across pids, which
        is how Perfetto renders separate processes anyway.
        """
        for event in events:
            adopted = dict(event)
            adopted["pid"] = pid
            self._events.append(adopted)
        if name:
            self._pid_names[pid] = name

    def events(self) -> List[Dict[str, object]]:
        """The raw event list (what a worker ships back for ``adopt``)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome ``trace_event`` document (open in Perfetto)."""
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
            for pid, label in sorted(self._pid_names.items())
        ]
        return {"traceEvents": metadata + self._events, "displayTimeUnit": "ms"}


#: Phases ("ph") the exporter emits; validation accepts exactly these.
_KNOWN_PHASES = frozenset("XiM")


def validate_chrome_trace(payload: object) -> List[str]:
    """Validate a Chrome-trace document; returns a list of problems.

    Empty list = valid.  Used by ``repro obs-report`` and the CI obs-smoke
    job, so a malformed export fails loudly instead of silently producing
    a file Perfetto rejects.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["trace document is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"event {i} has unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i} has no name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"event {i} has no integer pid")
        if phase in "Xi":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"event {i} has no numeric ts")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} has no non-negative dur")
    return problems


class FlightRecorder:
    """A bounded ring of recent kernel events, dumped when a run dies.

    ``note()`` is the hot-path call: one tuple append into a ``deque`` with
    ``maxlen``, no formatting, no allocation beyond the tuple.  ``dump()``
    renders the ring for the log at crash time only.
    """

    __slots__ = ("_ring",)

    def __init__(self, capacity: int = 256):
        self._ring: deque = deque(maxlen=capacity)

    def note(self, time: float, kind: int, seq: int) -> None:
        self._ring.append((time, kind, seq))

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def clear(self) -> None:
        self._ring.clear()

    def dump(self) -> List[Dict[str, object]]:
        """The ring contents, oldest first, with readable event kinds."""
        # Imported here: the kernel's package pulls in layers that hold an
        # Observability themselves, so a module-level import would cycle.
        from repro.sim.kernel import KIND_NAMES

        return [
            {"time": t, "kind": KIND_NAMES.get(kind, str(kind)), "seq": seq}
            for t, kind, seq in self._ring
        ]

    def format(self) -> str:
        """A compact one-line-per-event rendering for log output."""
        return "\n".join(
            f"  t={entry['time']:g} {entry['kind']} seq={entry['seq']}"
            for entry in self.dump()
        )
