"""Unit tests for repro.roadmap.builder and repro.roadmap.graph."""

import numpy as np
import pytest

from repro.geo.bbox import BoundingBox
from repro.roadmap.builder import RoadMapBuilder
from repro.roadmap.graph import RoadMap


class TestBuilder:
    def test_auto_ids_increase(self):
        builder = RoadMapBuilder()
        a = builder.add_intersection((0, 0))
        b = builder.add_intersection((10, 0))
        assert b.id == a.id + 1

    def test_duplicate_node_id_rejected(self):
        builder = RoadMapBuilder()
        builder.add_intersection((0, 0), node_id=5)
        with pytest.raises(ValueError):
            builder.add_intersection((1, 1), node_id=5)

    def test_link_requires_existing_nodes(self):
        builder = RoadMapBuilder()
        builder.add_intersection((0, 0))
        with pytest.raises(ValueError):
            builder.add_link(0, 99)

    def test_link_geometry_includes_endpoints_and_shape(self):
        builder = RoadMapBuilder()
        a = builder.add_intersection((0, 0)).id
        b = builder.add_intersection((100, 0)).id
        link = builder.add_link(a, b, shape_points=[(50.0, 10.0)])
        assert len(link.geometry) == 3
        assert link.length > 100.0

    def test_link_with_coincident_endpoints_raises(self):
        builder = RoadMapBuilder()
        a = builder.add_intersection((0, 0)).id
        b = builder.add_intersection((0, 0)).id
        with pytest.raises(ValueError):
            builder.add_link(a, b)

    def test_duplicate_shape_points_collapsed(self):
        builder = RoadMapBuilder()
        a = builder.add_intersection((0, 0)).id
        b = builder.add_intersection((100, 0)).id
        link = builder.add_link(a, b, shape_points=[(50.0, 0.0), (50.0, 0.0)])
        assert len(link.geometry) == 3

    def test_two_way_link_creates_twins(self):
        builder = RoadMapBuilder()
        a = builder.add_intersection((0, 0)).id
        b = builder.add_intersection((100, 0)).id
        forward, backward = builder.add_two_way_link(a, b, shape_points=[(40.0, 5.0)])
        assert forward.from_node == a and forward.to_node == b
        assert backward.from_node == b and backward.to_node == a
        assert forward.length == pytest.approx(backward.length)

    def test_get_or_create_intersection_merges(self):
        builder = RoadMapBuilder()
        a = builder.add_intersection((0, 0))
        same = builder.get_or_create_intersection((0.5, 0.5), merge_tolerance=1.0)
        assert same.id == a.id
        other = builder.get_or_create_intersection((10.0, 0.0), merge_tolerance=1.0)
        assert other.id != a.id

    def test_counts(self):
        builder = RoadMapBuilder()
        a = builder.add_intersection((0, 0)).id
        b = builder.add_intersection((50, 0)).id
        builder.add_two_way_link(a, b)
        assert builder.num_intersections() == 2
        assert builder.num_links() == 2


class TestRoadMap:
    def test_duplicate_link_id_rejected(self, straight_map):
        links = list(straight_map.links.values())
        with pytest.raises(ValueError):
            RoadMap(straight_map.intersections.values(), links + [links[0]])

    def test_unknown_node_reference_rejected(self, straight_map):
        links = list(straight_map.links.values())
        nodes = [n for n in straight_map.intersections.values() if n.id != links[0].from_node]
        with pytest.raises(ValueError):
            RoadMap(nodes, links)

    def test_counts(self, straight_map):
        assert straight_map.num_intersections() == 5
        assert straight_map.num_links() == 8
        assert straight_map.total_length() == pytest.approx(4000.0)

    def test_outgoing_incoming(self, straight_map):
        # An interior node of the two-way straight road has 2 outgoing and 2 incoming.
        interior = 1
        assert len(straight_map.outgoing_links(interior)) == 2
        assert len(straight_map.incoming_links(interior)) == 2

    def test_successors_exclude_reverse(self, straight_map):
        # Take a forward link in the middle of the road.
        link = next(
            l for l in straight_map.links.values() if l.from_node == 1 and l.to_node == 2
        )
        successors = straight_map.successors(link)
        assert all(s.from_node == 2 for s in successors)
        assert all(not (s.to_node == 1) for s in successors)

    def test_reverse_link(self, straight_map):
        link = next(iter(straight_map.links.values()))
        twin = straight_map.reverse_link(link)
        assert twin is not None
        assert twin.from_node == link.to_node
        assert twin.to_node == link.from_node

    def test_degree(self, t_map):
        # Centre of the T junction has three outgoing links.
        center, _ = t_map.nearest_intersection((0.0, 0.0))
        assert t_map.degree(center.id) == 3

    def test_nearest_link(self, straight_map):
        found = straight_map.nearest_link((250.0, 30.0))
        assert found is not None
        link, dist = found
        assert dist == pytest.approx(30.0)

    def test_nearest_link_max_distance(self, straight_map):
        assert straight_map.nearest_link((250.0, 500.0), max_distance=100.0) is None

    def test_links_near(self, straight_map):
        hits = straight_map.links_near((250.0, 10.0), radius=20.0)
        assert len(hits) >= 2  # both directions of the road
        assert hits[0][1] <= hits[-1][1]

    def test_links_in_box(self, straight_map):
        links = straight_map.links_in_box(BoundingBox(0.0, -10.0, 400.0, 10.0))
        assert len(links) >= 2

    def test_nearest_intersection(self, straight_map):
        node, dist = straight_map.nearest_intersection((510.0, 5.0))
        assert dist == pytest.approx(float(np.hypot(10.0, 5.0)))

    def test_to_networkx(self, straight_map):
        graph = straight_map.to_networkx()
        assert graph.number_of_nodes() == straight_map.num_intersections()
        assert graph.number_of_edges() == straight_map.num_links()
        for _, _, data in graph.edges(data=True):
            assert data["length"] > 0
            assert data["travel_time"] > 0

    def test_statistics(self, straight_map):
        stats = straight_map.statistics()
        assert stats["intersections"] == 5
        assert stats["links"] == 8
        assert stats["total_length_km"] == pytest.approx(4.0)
        assert stats["mean_out_degree"] > 0
