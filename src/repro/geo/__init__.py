"""Planar geometry substrate used by the road-map model and the protocols.

All geometric computation in the library happens in a local, planar Cartesian
frame whose coordinates are expressed in metres (x grows towards the east,
y towards the north).  The :mod:`repro.geo.geodesy` module converts between
this frame and WGS-84 latitude/longitude for importing or exporting real GPS
data.

The module deliberately avoids any dependency on ``shapely``: only a handful
of primitives are required by the dead-reckoning protocols (point-to-segment
projection, polyline arc-length parameterisation, bearings), and implementing
them directly on top of NumPy keeps the hot loops of the simulator fast and
easy to vectorise.
"""

from repro.geo.vec import (
    Vec2,
    as_vec,
    distance,
    distance_sq,
    norm,
    normalize,
    dot,
    cross,
    lerp,
    rotate,
    perpendicular,
)
from repro.geo.angles import (
    normalize_angle,
    normalize_bearing,
    angle_between,
    bearing,
    bearing_to_unit,
    unit_to_bearing,
    angle_difference,
    TWO_PI,
)
from repro.geo.segment import Segment
from repro.geo.polyline import Polyline
from repro.geo.bbox import BoundingBox
from repro.geo.geodesy import (
    EARTH_RADIUS_M,
    haversine_distance,
    LocalProjection,
)

__all__ = [
    "Vec2",
    "as_vec",
    "distance",
    "distance_sq",
    "norm",
    "normalize",
    "dot",
    "cross",
    "lerp",
    "rotate",
    "perpendicular",
    "normalize_angle",
    "normalize_bearing",
    "angle_between",
    "bearing",
    "bearing_to_unit",
    "unit_to_bearing",
    "angle_difference",
    "TWO_PI",
    "Segment",
    "Polyline",
    "BoundingBox",
    "EARTH_RADIUS_M",
    "haversine_distance",
    "LocalProjection",
]
