"""Tests for the columnar query engine (and GridIndex keyed removal)."""

import numpy as np
import pytest

from repro.geo.bbox import BoundingBox
from repro.geo.vec import distance
from repro.service.query_engine import QueryEngine, ScalarQueryEngine
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem
from repro.spatial.rtree import STRtree


def _point_item(key, x, y):
    p = np.array([x, y], dtype=float)
    return IndexedItem(key=key, bounds=BoundingBox(x, y, x, y), distance=lambda q: distance(p, q))


def _positions(rng, n, extent=10_000.0):
    pts = rng.uniform(0.0, extent, size=(n, 2))
    return {f"obj-{i:04d}": pts[i] for i in range(n)}


class TestGridIndexRemove:
    def test_remove_returns_count_and_shrinks(self):
        index = GridIndex(cell_size=100.0)
        index.insert(_point_item("a", 10.0, 10.0))
        index.insert(_point_item("b", 20.0, 20.0))
        assert len(index) == 2
        assert index.remove("a") == 1
        assert len(index) == 1
        assert [item.key for item in index.items()] == ["b"]

    def test_remove_unknown_key_is_noop(self):
        index = GridIndex(cell_size=100.0)
        index.insert(_point_item("a", 10.0, 10.0))
        assert index.remove("zz") == 0
        assert len(index) == 1

    def test_removed_item_leaves_queries(self):
        index = GridIndex(cell_size=100.0)
        index.insert(_point_item("a", 10.0, 10.0))
        index.insert(_point_item("b", 500.0, 500.0))
        box = BoundingBox(0.0, 0.0, 50.0, 50.0)
        assert [item.key for item in index.query_bbox(box)] == ["a"]
        index.remove("a")
        assert index.query_bbox(box) == []
        nearest = index.nearest((0.0, 0.0))
        assert nearest is not None and nearest[0].key == "b"

    def test_remove_duplicate_keys_removes_all(self):
        index = GridIndex(cell_size=100.0)
        index.insert(_point_item("dup", 10.0, 10.0))
        index.insert(_point_item("dup", 900.0, 900.0))
        assert index.remove("dup") == 2
        assert len(index) == 0

    def test_reinsert_after_remove(self):
        index = GridIndex(cell_size=100.0)
        index.insert(_point_item("a", 10.0, 10.0))
        index.remove("a")
        index.insert(_point_item("a", 700.0, 700.0))
        nearest = index.nearest((710.0, 710.0))
        assert nearest[0].key == "a"
        assert nearest[1] == pytest.approx(distance((700.0, 700.0), (710.0, 710.0)))

    def test_rtree_remove_unsupported(self):
        tree = STRtree([_point_item("a", 10.0, 10.0)])
        with pytest.raises(NotImplementedError):
            tree.remove("a")


class TestQueryEngineSync:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueryEngine(cell_size=0.0)

    def test_first_sync_registers_everything(self):
        engine = QueryEngine(cell_size=500.0)
        rng = np.random.default_rng(0)
        positions = _positions(rng, 50)
        moved = engine.sync(positions, time=0.0)
        assert moved == 50
        assert len(engine) == 50
        assert engine.synced_time == 0.0

    def test_within_cell_moves_are_free(self):
        engine = QueryEngine(cell_size=500.0)
        engine.sync({"a": np.array([100.0, 100.0])}, time=0.0)
        # 100 -> 300 stays in cell (0, 0): position refreshed, no reinsertion.
        moved = engine.sync({"a": np.array([300.0, 300.0])}, time=1.0)
        assert moved == 0
        np.testing.assert_array_equal(engine.position_of("a"), [300.0, 300.0])
        assert engine.range_query(BoundingBox(250.0, 250.0, 350.0, 350.0)) == ["a"]

    def test_cell_crossing_reindexes(self):
        engine = QueryEngine(cell_size=500.0)
        engine.sync({"a": np.array([100.0, 100.0])}, time=0.0)
        moved = engine.sync({"a": np.array([600.0, 100.0])}, time=1.0)
        assert moved == 1
        assert engine.range_query(BoundingBox(550.0, 50.0, 650.0, 150.0)) == ["a"]
        assert engine.range_query(BoundingBox(50.0, 50.0, 150.0, 150.0)) == []

    def test_vanished_objects_are_dropped(self):
        engine = QueryEngine(cell_size=500.0)
        engine.sync({"a": np.array([1.0, 1.0]), "b": np.array([2.0, 2.0])}, time=0.0)
        engine.sync({"b": np.array([2.0, 2.0])}, time=1.0)
        assert len(engine) == 1
        assert engine.object_ids() == ["b"]
        assert engine.drops == 1
        assert engine.k_nearest((0.0, 0.0), k=5) == [("b", distance((2.0, 2.0), (0.0, 0.0)))]


class TestQueryEngineQueries:
    @pytest.fixture()
    def engine_and_positions(self):
        engine = QueryEngine(cell_size=400.0)
        rng = np.random.default_rng(7)
        positions = _positions(rng, 200)
        engine.sync(positions, time=0.0)
        return engine, positions

    def test_range_matches_brute_force(self, engine_and_positions):
        engine, positions = engine_and_positions
        rng = np.random.default_rng(1)
        for _ in range(20):
            lo = rng.uniform(0.0, 8000.0, size=2)
            extent = rng.uniform(100.0, 3000.0, size=2)
            box = BoundingBox(lo[0], lo[1], lo[0] + extent[0], lo[1] + extent[1])
            expected = sorted(
                oid for oid, p in positions.items() if box.contains_point(p)
            )
            assert engine.range_query(box) == expected

    def test_k_nearest_matches_brute_force(self, engine_and_positions):
        engine, positions = engine_and_positions
        rng = np.random.default_rng(2)
        for k in (1, 3, 10, 250):
            q = rng.uniform(0.0, 10_000.0, size=2)
            expected = sorted(
                ((oid, distance(p, q)) for oid, p in positions.items()),
                key=lambda pair: (pair[1], pair[0]),
            )[:k]
            assert engine.k_nearest(q, k=k) == expected

    def test_within_radius_matches_brute_force(self, engine_and_positions):
        engine, positions = engine_and_positions
        rng = np.random.default_rng(3)
        for radius in (50.0, 500.0, 2500.0):
            q = rng.uniform(0.0, 10_000.0, size=2)
            expected = sorted(
                (
                    (oid, distance(p, q))
                    for oid, p in positions.items()
                    if distance(p, q) <= radius
                ),
                key=lambda pair: (pair[1], pair[0]),
            )
            assert engine.within_radius(q, radius) == expected

    def test_k_zero_and_negative_radius(self, engine_and_positions):
        engine, _ = engine_and_positions
        assert engine.k_nearest((0.0, 0.0), k=0) == []
        assert engine.within_radius((0.0, 0.0), -1.0) == []

    def test_empty_engine_queries(self):
        engine = QueryEngine()
        assert engine.range_query(BoundingBox(0.0, 0.0, 1.0, 1.0)) == []
        assert engine.k_nearest((0.0, 0.0), k=3) == []
        assert engine.within_radius((0.0, 0.0), 100.0) == []

    def test_tie_break_is_insertion_order_independent(self):
        """Equidistant objects at the k-th place sort by id, not by index luck."""
        # Four objects on a circle around the query point, all at distance 100.
        offsets = [(100.0, 0.0), (-100.0, 0.0), (0.0, 100.0), (0.0, -100.0)]
        names = ["d", "b", "a", "c"]
        for order in ([0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]):
            engine = QueryEngine(cell_size=150.0)
            positions = {
                names[i]: np.array([500.0 + offsets[i][0], 500.0 + offsets[i][1]])
                for i in order
            }
            engine.sync(positions, time=0.0)
            result = engine.k_nearest((500.0, 500.0), k=2)
            assert [oid for oid, _ in result] == ["a", "b"]
            assert all(d == pytest.approx(100.0) for _, d in result)


class TestScalarBulkSync:
    """The scalar engine's cold-start bulk sync equals its incremental loop."""

    def _engines(self, n=300, seed=11):
        import repro.service.query_engine as qe_mod

        rng = np.random.default_rng(seed)
        positions = _positions(rng, n)
        assert n >= qe_mod._BULK_SYNC_THRESHOLD
        bulk = ScalarQueryEngine(cell_size=500.0)
        moved_bulk = bulk.sync(positions, time=0.0)
        incremental = ScalarQueryEngine(cell_size=500.0)
        threshold = qe_mod._BULK_SYNC_THRESHOLD
        try:
            qe_mod._BULK_SYNC_THRESHOLD = n + 1
            moved_inc = incremental.sync(positions, time=0.0)
        finally:
            qe_mod._BULK_SYNC_THRESHOLD = threshold
        assert moved_bulk == moved_inc == n
        return bulk, incremental, positions

    def test_bulk_cold_start_matches_incremental(self):
        bulk, incremental, positions = self._engines()
        assert bulk.object_ids() == incremental.object_ids()
        assert bulk.syncs == incremental.syncs == 1
        assert bulk.moves == incremental.moves
        assert bulk._cells == incremental._cells
        probes = [
            BoundingBox(0.0, 0.0, 3000.0, 3000.0),
            BoundingBox(4000.0, 2000.0, 8000.0, 9000.0),
        ]
        for box in probes:
            assert bulk.range_query(box) == incremental.range_query(box)
            assert bulk.candidates_in_box(box) == incremental.candidates_in_box(box)
        for point in ((5000.0, 5000.0), (137.0, 9900.0)):
            assert bulk.k_nearest(point, 7) == incremental.k_nearest(point, 7)
            assert bulk.within_radius(point, 1500.0) == incremental.within_radius(point, 1500.0)

    def test_incremental_updates_after_bulk_start(self):
        bulk, incremental, positions = self._engines()
        moved_positions = dict(positions)
        ids = list(positions)
        for oid in ids[:20]:
            moved_positions[oid] = positions[oid] + np.array([1300.0, -700.0])
        del moved_positions[ids[-1]]
        assert bulk.sync(moved_positions, 1.0) == incremental.sync(moved_positions, 1.0)
        assert bulk.object_ids() == incremental.object_ids()
        assert bulk.drops == incremental.drops == 1
        box = BoundingBox(0.0, 0.0, 10_000.0, 10_000.0)
        assert bulk.range_query(box) == incremental.range_query(box)

    def test_small_cold_start_stays_incremental(self):
        import repro.service.query_engine as qe_mod

        rng = np.random.default_rng(3)
        positions = _positions(rng, qe_mod._BULK_SYNC_THRESHOLD - 1)
        engine = ScalarQueryEngine(cell_size=500.0)
        engine.sync(positions, time=0.0)
        assert len(engine) == len(positions)


class TestColumnarScalarEquivalence:
    """The columnar kernels are bit-identical to the scalar reference engine."""

    def _pair(self, cell_size=400.0):
        return QueryEngine(cell_size=cell_size), ScalarQueryEngine(cell_size=cell_size)

    def _assert_identical(self, columnar, scalar, rng, queries=15):
        assert columnar.object_ids() == scalar.object_ids()
        for _ in range(queries):
            lo = rng.uniform(-1000.0, 9000.0, size=2)
            extent = rng.uniform(100.0, 3000.0, size=2)
            box = BoundingBox(lo[0], lo[1], lo[0] + extent[0], lo[1] + extent[1])
            assert columnar.range_query(box) == scalar.range_query(box)
            assert sorted(columnar.ids_in_box(box)) == sorted(scalar.ids_in_box(box))
            q = rng.uniform(0.0, 10_000.0, size=2)
            k = int(rng.integers(1, 12))
            assert columnar.k_nearest(q, k) == scalar.k_nearest(q, k)
            radius = float(rng.uniform(50.0, 2500.0))
            assert columnar.within_radius(q, radius) == scalar.within_radius(q, radius)

    def test_random_fleet_answers_and_stats_match(self):
        columnar, scalar = self._pair()
        rng = np.random.default_rng(23)
        positions = _positions(rng, 300)
        assert columnar.sync(positions, 0.0) == scalar.sync(positions, 0.0)
        self._assert_identical(columnar, scalar, np.random.default_rng(5))

    def test_incremental_drift_drops_and_adds_match(self):
        columnar, scalar = self._pair()
        rng = np.random.default_rng(29)
        positions = _positions(rng, 250)
        columnar.sync(positions, 0.0)
        scalar.sync(positions, 0.0)
        ids = list(positions)
        for step in range(1, 5):
            # Drift everything a little, push some objects across cells,
            # drop a few and add a few fresh ones each step.
            positions = {
                oid: p + rng.normal(0.0, 120.0, size=2) for oid, p in positions.items()
            }
            for oid in rng.choice(ids, size=10, replace=False):
                positions.pop(str(oid), None)
            for j in range(3):
                positions[f"new-{step}-{j}"] = rng.uniform(0.0, 10_000.0, size=2)
            ids = list(positions)
            assert columnar.sync(positions, float(step)) == scalar.sync(
                positions, float(step)
            )
            assert columnar.drops == scalar.drops
            assert columnar.moves == scalar.moves
            self._assert_identical(columnar, scalar, np.random.default_rng(100 + step))

    def test_candidates_in_box_is_refined_superset(self):
        """Candidate sets may differ, but both contain every exact hit."""
        columnar, scalar = self._pair()
        rng = np.random.default_rng(31)
        positions = _positions(rng, 200)
        columnar.sync(positions, 0.0)
        scalar.sync(positions, 0.0)
        for _ in range(10):
            lo = rng.uniform(0.0, 8000.0, size=2)
            box = BoundingBox(lo[0], lo[1], lo[0] + 1500.0, lo[1] + 1500.0)
            exact = set(columnar.range_query(box))
            assert exact <= set(columnar.candidates_in_box(box))
            assert exact <= set(scalar.candidates_in_box(box))


class TestPositionOfReadOnly:
    """position_of returns a read-only view — callers cannot corrupt the index."""

    @pytest.mark.parametrize("engine_cls", [QueryEngine, ScalarQueryEngine])
    def test_mutation_raises_and_index_survives(self, engine_cls):
        engine = engine_cls(cell_size=500.0)
        engine.sync({"a": np.array([100.0, 100.0]), "b": np.array([900.0, 900.0])}, 0.0)
        view = engine.position_of("a")
        np.testing.assert_array_equal(view, [100.0, 100.0])
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 1e9
        # The attempted write changed nothing: queries still see "a" at home.
        np.testing.assert_array_equal(engine.position_of("a"), [100.0, 100.0])
        assert engine.range_query(BoundingBox(0.0, 0.0, 200.0, 200.0)) == ["a"]


class TestSyncDropScanSkip:
    """Unchanged membership skips the drop scan without changing semantics."""

    @pytest.mark.parametrize("engine_cls", [QueryEngine, ScalarQueryEngine])
    def test_steady_state_never_drops(self, engine_cls):
        engine = engine_cls(cell_size=500.0)
        rng = np.random.default_rng(17)
        positions = _positions(rng, 60)
        engine.sync(positions, 0.0)
        for step in range(1, 6):
            positions = {
                oid: p + rng.normal(0.0, 40.0, size=2) for oid, p in positions.items()
            }
            engine.sync(positions, float(step))
        assert engine.drops == 0
        assert len(engine) == 60

    @pytest.mark.parametrize("engine_cls", [QueryEngine, ScalarQueryEngine])
    def test_equal_length_different_keys_still_drops(self, engine_cls):
        """Same count but a swapped id must not fool the skip check."""
        engine = engine_cls(cell_size=500.0)
        engine.sync({"a": np.array([1.0, 1.0]), "b": np.array([2.0, 2.0])}, 0.0)
        engine.sync({"a": np.array([1.0, 1.0]), "c": np.array([3.0, 3.0])}, 1.0)
        assert engine.drops == 1
        assert sorted(engine.object_ids()) == ["a", "c"]
        assert engine.range_query(BoundingBox(0.0, 0.0, 10.0, 10.0)) == ["a", "c"]
