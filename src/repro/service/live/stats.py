"""Per-request latency accounting for the live tier.

One :class:`LatencyRecorder` per request class (ingest, query) collects
wall-clock durations and reduces them to the metrics the benchmark and the
``load-test`` CLI report.  Definitions (also documented in the README):

* **avg** — arithmetic mean over all recorded requests.
* **p50 / p95 / p99** — nearest-rank percentiles over the sorted samples:
  ``pq = sorted[ceil(q/100 * n) - 1]``.  Nearest-rank is exact, monotone
  and needs no interpolation policy, so two runs over the same samples
  always report the same number.
* **saturation throughput** — completed requests divided by the wall-clock
  span of the run that issued them (reported by the load generator, not
  here).

The implementation lives in :mod:`repro.obs.metrics` — the repository's
one latency/percentile instrument, shared with the metrics registry and
the benchmarks — and is re-exported here so the live tier's historical
import path keeps working.
"""

from __future__ import annotations

from repro.obs.metrics import LatencyRecorder, nearest_rank

__all__ = ["LatencyRecorder", "nearest_rank"]
