"""The map-based dead-reckoning protocol (the paper's contribution, Sec. 3).

Compared to the basic dead-reckoning mechanism, the map-based protocol

* runs a map-matching algorithm on every sensor sighting at the source
  (:class:`~repro.mapmatching.IncrementalMapMatcher`),
* transmits the *corrected* position ``pc``, the current speed and the
  identifier of the current link in its updates, and
* uses a prediction function enhanced by map information
  (:class:`~repro.protocols.prediction.MapPrediction`): the object is
  assumed to keep following its reported link, and at intersections the turn
  policy — by default the link with the smallest angle to the previous one —
  selects the next link.

When the source cannot match the object to any link (forward- and
backward-tracking both fail), it sends an update with an *empty link* and
both sides fall back to linear prediction until the object can be matched to
the map again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mapmatching.matcher import (
    IncrementalMapMatcher,
    MatcherConfig,
    MatchResult,
)
from repro.protocols.base import ObjectState, UpdateProtocol, UpdateReason
from repro.protocols.prediction import (
    MapPrediction,
    PredictionFunction,
    SmallestAngleTurnPolicy,
    TurnPolicy,
)
from repro.roadmap.graph import RoadMap


@dataclass(frozen=True)
class MapBasedConfig:
    """Tuning knobs of the map-based protocol.

    Attributes
    ----------
    matching_tolerance:
        The paper's ``um``: how far (metres) a position may lie from a link
        and still be matched onto it; should reflect the sensor accuracy.
    end_proximity:
        Distance to the link end (metres) below which leaving the link is
        interpreted as having passed the intersection (forward-tracking).
    backtrack_depth:
        Number of intersections examined during backward-tracking.
    reacquire_interval:
        When off-map, how often (in sightings) the source re-queries the
        spatial index to return to the map-based protocol.
    advance_at_link_end:
        Forward-track as soon as the projection clamps at the current
        link's end instead of staying clamped within ``um`` (see
        :class:`~repro.mapmatching.matcher.MatcherConfig`).  Makes the
        matching invariant to link segmentation on imported maps; off by
        default to preserve the paper's evaluated behaviour.
    update_on_off_map:
        Send an update with an empty link as soon as the object can no
        longer be matched (paper behaviour).  Disabling this delays the
        fallback until the next threshold update.
    update_on_reacquire:
        Send an update as soon as a link is found again.  The paper does not
        require this; disabled by default, the link is simply included in
        the next regular update.
    use_corrected_position:
        Transmit the map-matched position ``pc`` (paper behaviour).  When
        disabled the raw sensor position is transmitted instead; used by the
        ablation benchmarks.
    speed_limit_factor:
        When set, the shared prediction caps the assumed speed on every link
        at this fraction of the link's speed limit (the paper's future-work
        extension); ``None`` reproduces the evaluated protocol.
    """

    matching_tolerance: float = 30.0
    end_proximity: float = 50.0
    backtrack_depth: int = 2
    reacquire_interval: int = 5
    advance_at_link_end: bool = False
    update_on_off_map: bool = True
    update_on_reacquire: bool = False
    use_corrected_position: bool = True
    speed_limit_factor: Optional[float] = None

    def matcher_config(self) -> MatcherConfig:
        """The corresponding :class:`~repro.mapmatching.MatcherConfig`."""
        return MatcherConfig(
            tolerance=self.matching_tolerance,
            end_proximity=self.end_proximity,
            backtrack_depth=self.backtrack_depth,
            reacquire_interval=self.reacquire_interval,
            advance_at_link_end=self.advance_at_link_end,
        )


class MapBasedProtocol(UpdateProtocol):
    """Map-based dead reckoning.

    Parameters
    ----------
    accuracy:
        Requested accuracy ``us`` at the server, in metres.
    roadmap:
        The road map shared by source and server.
    sensor_uncertainty:
        Sensor uncertainty ``up`` in metres.
    estimation_window:
        Window for the speed/heading estimate.
    turn_policy:
        Intersection choice policy of the prediction function; defaults to
        the paper's smallest-angle rule.
    config:
        Map-matching and protocol behaviour knobs.
    """

    name = "map-based dead reckoning"

    def __init__(
        self,
        accuracy: float,
        roadmap: RoadMap,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
        turn_policy: Optional[TurnPolicy] = None,
        config: Optional[MapBasedConfig] = None,
    ):
        super().__init__(accuracy, sensor_uncertainty, estimation_window)
        self.roadmap = roadmap
        self.config = config or MapBasedConfig()
        self._turn_policy = turn_policy or SmallestAngleTurnPolicy()
        self._prediction = MapPrediction(
            roadmap,
            self._turn_policy,
            speed_limit_factor=self.config.speed_limit_factor,
        )
        self.matcher = IncrementalMapMatcher(roadmap, self.config.matcher_config())
        self._last_match: Optional[MatchResult] = None

    # ------------------------------------------------------------------ #
    # UpdateProtocol interface
    # ------------------------------------------------------------------ #
    def prediction_function(self) -> PredictionFunction:
        return self._prediction

    def _pre_decision_hook(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> None:
        # The heading disambiguates the two carriageways of two-way roads;
        # below ~1 m/s the heading estimate is dominated by sensor noise and
        # is withheld from the matcher.
        heading = velocity if speed > 1.0 else None
        self._last_match = self.matcher.update(position, heading=heading)

    def _should_update(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateReason]:
        assert self.last_reported is not None
        match = self._last_match
        matched = match is not None and match.is_matched

        # Losing the map: tell the server to fall back to linear prediction.
        if (
            self.config.update_on_off_map
            and not matched
            and self.last_reported.link_id is not None
        ):
            return UpdateReason.OFF_MAP

        # Returning to the map (optional behaviour).
        if (
            self.config.update_on_reacquire
            and matched
            and self.last_reported.link_id is None
        ):
            return UpdateReason.REACQUIRED

        if self._threshold_exceeded(time, position):
            return UpdateReason.THRESHOLD
        return None

    def _build_state(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> ObjectState:
        match = self._last_match
        if match is not None and match.is_matched:
            reported_position = (
                match.position if self.config.use_corrected_position else position
            )
            return ObjectState(
                time=time,
                position=reported_position,
                velocity=velocity,
                speed=speed,
                link_id=match.link_id,
                link_offset=match.offset,
                uncertainty=self.sensor_uncertainty,
            )
        # Off-map: transmit the raw position with an empty link; the shared
        # prediction function degrades to linear prediction for such states.
        return ObjectState(
            time=time,
            position=position,
            velocity=velocity,
            speed=speed,
            link_id=None,
            link_offset=None,
            uncertainty=self.sensor_uncertainty,
        )

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    @property
    def last_match(self) -> Optional[MatchResult]:
        """The result of matching the most recent sighting."""
        return self._last_match

    def matching_statistics(self) -> dict:
        """Counters of the underlying map matcher."""
        return self.matcher.statistics()

    def _detach_clone_state(self) -> None:
        super()._detach_clone_state()
        # The matcher holds per-run tracking state and statistics; it is
        # cheap to rebuild (the spatial index lives in the road map), so a
        # clone gets its own instead of resetting the prototype's in place.
        self.matcher = IncrementalMapMatcher(self.roadmap, self.config.matcher_config())
        self._last_match = None

    def reset(self) -> None:
        super().reset()
        self.matcher.reset()
        self._last_match = None
