"""Uniform-grid spatial hash.

Road-network geometry is spread roughly uniformly over the covered area, so
a fixed-cell-size grid gives excellent query performance with trivial code.
This is the default index used by :class:`repro.roadmap.graph.RoadMap`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple, TypeVar

from repro.geo.bbox import BoundingBox
from repro.spatial.index import IndexedItem, SpatialIndex

T = TypeVar("T", bound=Hashable)


class GridIndex(SpatialIndex[T]):
    """Spatial hash with square cells of a configurable size.

    Parameters
    ----------
    cell_size:
        Edge length of a grid cell in metres.  A good choice is slightly
        larger than the typical item extent; for road links the default of
        250 m works well across all the paper's scenarios.
    items:
        Optional initial items.
    """

    def __init__(
        self, cell_size: float = 250.0, items: Optional[Iterable[IndexedItem[T]]] = None
    ):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, int], List[IndexedItem[T]]] = defaultdict(list)
        self._items: List[IndexedItem[T]] = []
        self._occupied: Optional[Tuple[int, int, int, int]] = None
        if items is not None:
            for item in items:
                self.insert(item)

    # ------------------------------------------------------------------ #
    # SpatialIndex interface
    # ------------------------------------------------------------------ #
    def insert(self, item: IndexedItem[T]) -> None:
        """Register *item* with every grid cell its bounding box overlaps."""
        self._items.append(item)
        min_cx, min_cy = self._cell_of(item.bounds.min_x, item.bounds.min_y)
        max_cx, max_cy = self._cell_of(item.bounds.max_x, item.bounds.max_y)
        if self._occupied is None:
            self._occupied = (min_cx, min_cy, max_cx, max_cy)
        else:
            o = self._occupied
            self._occupied = (
                min(o[0], min_cx), min(o[1], min_cy), max(o[2], max_cx), max(o[3], max_cy)
            )
        # The occupied extent now covers the item, so the clamp in
        # _cells_for_box is an identity here.
        for cell in self._cells_for_box(item.bounds):
            self._cells[cell].append(item)

    def query_bbox(self, box: BoundingBox) -> list[IndexedItem[T]]:
        """All items whose bounding boxes intersect *box*."""
        seen: Set[int] = set()
        out: List[IndexedItem[T]] = []
        for cell in self._cells_for_box(box):
            for item in self._cells.get(cell, ()):
                marker = id(item)
                if marker in seen:
                    continue
                seen.add(marker)
                if item.bounds.intersects(box):
                    out.append(item)
        return out

    def items(self) -> List[IndexedItem[T]]:
        """Every stored item, in insertion order."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self.cell_size)), int(math.floor(y / self.cell_size)))

    def _cells_for_box(self, box: BoundingBox) -> Iterable[Tuple[int, int]]:
        """Occupied-range-clamped cell coordinates covering *box*.

        Clamping to the occupied extent keeps arbitrarily large query boxes
        (e.g. an expanding nearest-neighbour search) from enumerating
        billions of empty cells.
        """
        if self._occupied is None:
            return
        min_cx, min_cy = self._cell_of(box.min_x, box.min_y)
        max_cx, max_cy = self._cell_of(box.max_x, box.max_y)
        occ_min_cx, occ_min_cy, occ_max_cx, occ_max_cy = self._occupied
        min_cx, min_cy = max(min_cx, occ_min_cx), max(min_cy, occ_min_cy)
        max_cx, max_cy = min(max_cx, occ_max_cx), min(max_cy, occ_max_cy)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                yield (cx, cy)

    def _initial_radius(self) -> float:
        return self.cell_size

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def cell_statistics(self) -> dict:
        """Occupancy statistics, useful for choosing a cell size."""
        counts = [len(v) for v in self._cells.values()]
        if not counts:
            return {"cells": 0, "max_per_cell": 0, "mean_per_cell": 0.0}
        return {
            "cells": len(counts),
            "max_per_cell": max(counts),
            "mean_per_cell": sum(counts) / len(counts),
        }
