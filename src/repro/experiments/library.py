"""The scenario library: every named scenario the stack can run.

One registry holds the paper's four canonical movement patterns *and* the
scenarios composed by :mod:`repro.mobility.generator` (topology × traffic
regime × agent × degradation).  Everything downstream resolves names here:
:class:`~repro.sim.runner.ScenarioSpec` (and with it the sweep runner, the
per-process scenario cache and every experiment entry point), the ``repro
sweep``/``simulate``/``fleet`` CLI commands, and the golden-metrics
regression suite, which pins the metrics of every library scenario.

The registry is deliberately open: :func:`register_scenario` accepts any
entry whose builder returns a :class:`~repro.mobility.scenarios.Scenario`,
so experiment scripts can add project-specific scenarios that immediately
work with sweeps, fleets and artifacts.

One caveat for parallel sweeps: the registry lives in this process.
Under the ``fork`` start method (the Linux default) workers inherit every
registration; under ``spawn``/``forkserver`` they re-import this module
and see only the built-ins, so a ``jobs > 1`` sweep over a scenario
registered at runtime fails name resolution in the workers.  Register
such scenarios at import time in a module the workers also import, or
run their sweeps with ``jobs=1``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.mobility.generator import (
    FREE_FLOW,
    NIGHT,
    RUSH_HOUR,
    SIGNALIZED,
    STROLL,
    AgentSpec,
    Degradation,
    GeneratorSpec,
    RealMapTopology,
    Topology,
    generate_scenario,
)
from repro.mobility.scenarios import (
    CAR_US_SWEEP,
    WALK_US_SWEEP,
    Scenario,
    ScenarioName,
    build_scenario,
)
from repro.sim.config import PROTOCOL_IDS, SimulationConfig
from repro.sim.fleet import FleetLane


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioEntry:
    """One named scenario: how to build it and how to describe it.

    Attributes
    ----------
    name:
        Registry key (also the CLI ``--scenario`` value).
    description:
        One-line human description.
    category:
        ``"canonical"`` for the paper's four patterns, ``"generated"`` for
        library compositions.
    default_seed:
        Seed used when the caller does not pick one; part of the scenario
        cache key, so ``seed=None`` and the explicit default share a cache
        entry.
    builder:
        ``(seed, scale) -> Scenario``; must be deterministic in both.
    knobs:
        Flat parameter summary for the README table and ``repro scenarios``.
    query_mix:
        Optional explicit application-query mix (``range`` / ``nearest`` /
        ``geofence`` weights) replayed by ``repro query-bench`` for this
        scenario.  When absent, :func:`repro.sim.workload.default_query_mix`
        derives one from the topology knob.
    query_rate_per_s:
        Optional default Poisson query-arrival rate (queries per simulated
        second) for event-kernel workload replays; ``None`` keeps the
        per-tick workload model.
    """

    name: str
    description: str
    category: str
    default_seed: int
    builder: Callable[[int, float], Scenario]
    knobs: Mapping[str, object] = field(default_factory=dict)
    query_mix: Optional[Mapping[str, float]] = None
    query_rate_per_s: Optional[float] = None


_REGISTRY: Dict[str, ScenarioEntry] = {}


def register_scenario(entry: ScenarioEntry) -> ScenarioEntry:
    """Add *entry* to the library (name must be unused)."""
    if entry.name in _REGISTRY:
        raise ValueError(f"scenario {entry.name!r} is already registered")
    _REGISTRY[entry.name] = entry
    return entry


def unregister_scenario(name: str) -> None:
    """Remove a runtime-registered scenario (tests, ad-hoc map imports).

    Raises ``KeyError`` for unknown names.  Removing one of the built-in
    entries is possible but pointless; reimporting the module does not
    bring it back within the same process.
    """
    del _REGISTRY[name]
    GENERATED_SPECS.pop(name, None)


def get_entry(name: Union[str, ScenarioName]) -> ScenarioEntry:
    """The registry entry for *name* (accepts :class:`ScenarioName` members)."""
    key = name.value if isinstance(name, enum.Enum) else str(name)
    entry = _REGISTRY.get(key)
    if entry is None:
        raise ValueError(
            f"unknown scenario {key!r}; known scenarios: {', '.join(scenario_names())}"
        )
    return entry


def scenario_names(category: Optional[str] = None) -> List[str]:
    """All registered scenario names (optionally filtered by category)."""
    return [
        name
        for name, entry in _REGISTRY.items()
        if category is None or entry.category == category
    ]


def build_library_scenario(
    name: Union[str, ScenarioName], seed: Optional[int] = None, scale: float = 1.0
) -> Scenario:
    """Build the named scenario directly (uncached; see ``ScenarioSpec.build``)."""
    entry = get_entry(name)
    seed = entry.default_seed if seed is None else int(seed)
    return entry.builder(seed, float(scale))


def describe_scenarios() -> List[Dict[str, object]]:
    """One row per registered scenario (name, category, description, knobs)."""
    return [
        {
            "scenario": entry.name,
            "category": entry.category,
            "description": entry.description,
            "knobs": ", ".join(f"{k}={v}" for k, v in entry.knobs.items()),
        }
        for entry in _REGISTRY.values()
    ]


# --------------------------------------------------------------------------- #
# canonical entries (the paper's Table 1 patterns)
# --------------------------------------------------------------------------- #
#: Explicit application-query mixes for scenarios whose workload shape is
#: better described by their *use* than by their topology (the fallback):
#: dispatchers chase their delivery van (nearest-heavy), a campus geofences
#: buildings, taxis are hailed by proximity in the congested grid.
QUERY_MIXES: Dict[str, Mapping[str, float]] = {
    "delivery_rounds": {"range": 0.5, "nearest": 3.0, "geofence": 1.0},
    "campus_courier": {"range": 0.5, "nearest": 1.0, "geofence": 3.0},
    "rush_hour_city": {"range": 0.5, "nearest": 3.0, "geofence": 1.0},
    "poisson_queries_freeway": {"range": 3.0, "nearest": 1.0, "geofence": 0.5},
}

#: Default Poisson query-arrival rates (queries per simulated second) for
#: scenarios modelling a live service under independent request traffic;
#: honoured by event-kernel workload replays (``repro query-bench --kernel
#: event``).
QUERY_RATES: Dict[str, float] = {
    "poisson_queries_freeway": 0.5,
}


def _canonical(name: ScenarioName, description: str, default_seed: int,
               knobs: Mapping[str, object]) -> ScenarioEntry:
    return register_scenario(
        ScenarioEntry(
            name=name.value,
            description=description,
            category="canonical",
            default_seed=default_seed,
            builder=lambda seed, scale, _n=name: build_scenario(_n, seed=seed, scale=scale),
            knobs=knobs,
            query_mix=QUERY_MIXES.get(name.value),
        )
    )


_canonical(
    ScenarioName.FREEWAY, "car on a freeway (Table 1: 163 km at ~103 km/h)", 0,
    {"topology": "corridor", "regime": "free_flow", "route_km": 163},
)
_canonical(
    ScenarioName.INTERURBAN, "car in inter-urban traffic (99 km at ~60 km/h)", 1,
    {"topology": "interurban", "regime": "mixed", "route_km": 99},
)
_canonical(
    ScenarioName.CITY, "car in city traffic (89 km at ~34 km/h)", 2,
    {"topology": "grid", "regime": "city", "route_km": 89},
)
_canonical(
    ScenarioName.WALKING, "walking person (10 km at ~4.6 km/h)", 3,
    {"topology": "footpath", "regime": "stroll", "route_km": 10},
)


# --------------------------------------------------------------------------- #
# generated entries
# --------------------------------------------------------------------------- #
#: The library's generated scenario recipes, by name.
GENERATED_SPECS: Dict[str, GeneratorSpec] = {}


def register_generated(spec: GeneratorSpec) -> GeneratorSpec:
    """Register a :class:`GeneratorSpec` as a library scenario."""
    register_scenario(
        ScenarioEntry(
            name=spec.name,
            description=spec.description,
            category="generated",
            default_seed=spec.default_seed,
            builder=lambda seed, scale, _s=spec: generate_scenario(_s, seed=seed, scale=scale),
            knobs=spec.knobs,
            query_mix=QUERY_MIXES.get(spec.name),
            query_rate_per_s=QUERY_RATES.get(spec.name),
        )
    )
    GENERATED_SPECS[spec.name] = spec
    return spec


register_generated(GeneratorSpec(
    name="rush_hour_city",
    description="car crawling through a congested Manhattan grid",
    topology=Topology(kind="grid", rows=14, cols=14, spacing_m=250.0),
    regime=RUSH_HOUR,
    agent=AgentSpec(kind="car", route_style="wander", straight_bias=0.75),
    route_length_m=25_000.0,
    default_seed=100,
))
register_generated(GeneratorSpec(
    name="delivery_rounds",
    description="delivery van on a multi-stop round with drop-off dwells",
    topology=Topology(kind="grid", rows=12, cols=12, spacing_m=260.0),
    regime=SIGNALIZED,
    agent=AgentSpec(kind="delivery", n_stops=10, dwell_range=(60.0, 240.0)),
    route_length_m=22_000.0,
    default_seed=101,
))
register_generated(GeneratorSpec(
    name="commuter_mixed",
    description="commute: motorway approach feeding into dense city streets",
    topology=Topology(kind="mixed", length_km=25.0, rows=10, cols=10, spacing_m=220.0),
    regime=FREE_FLOW,
    agent=AgentSpec(kind="car", route_style="through", estimation_window=3),
    route_length_m=28_000.0,
    default_seed=102,
))
register_generated(GeneratorSpec(
    name="tunnel_freeway",
    description="freeway drive with GPS dropout windows (tunnels)",
    topology=Topology(kind="corridor", length_km=60.0),
    regime=FREE_FLOW,
    agent=AgentSpec(kind="car", route_style="corridor", estimation_window=2),
    degradation=Degradation(dropout_windows=4, dropout_fraction=0.08),
    route_length_m=55_000.0,
    default_seed=103,
))
register_generated(GeneratorSpec(
    name="radial_commute",
    description="car wandering a ring-and-spoke city under signal control",
    topology=Topology(kind="radial", n_arms=9, n_rings=6, ring_spacing_m=500.0),
    regime=SIGNALIZED,
    agent=AgentSpec(kind="car", route_style="wander", straight_bias=0.6),
    route_length_m=20_000.0,
    default_seed=104,
))
register_generated(GeneratorSpec(
    name="night_corridor",
    description="fast, smooth night drive down an empty motorway",
    topology=Topology(kind="corridor", length_km=70.0),
    regime=NIGHT,
    agent=AgentSpec(kind="car", route_style="corridor", estimation_window=2),
    route_length_m=60_000.0,
    default_seed=105,
))
register_generated(GeneratorSpec(
    name="urban_canyon_walk",
    description="pedestrian in an urban canyon with multipath noise bursts",
    topology=Topology(kind="footpath", rows=18, cols=18, spacing_m=90.0),
    regime=STROLL,
    agent=AgentSpec(kind="pedestrian", estimation_window=8),
    degradation=Degradation(burst_windows=5, burst_sigma=12.0, burst_fraction=0.2),
    route_length_m=7_000.0,
    default_seed=106,
    us_values=tuple(WALK_US_SWEEP),
    matching_tolerance=20.0,
))
register_generated(GeneratorSpec(
    name="interurban_stopandgo",
    description="inter-urban trunk road degraded to stop-and-go traffic",
    topology=Topology(kind="interurban", n_towns=6, town_spacing_km=14.0),
    regime=RUSH_HOUR,
    agent=AgentSpec(kind="car", route_style="corridor"),
    route_length_m=40_000.0,
    default_seed=107,
))
register_generated(GeneratorSpec(
    name="campus_courier",
    description="walking courier doing a multi-stop round across a campus",
    topology=Topology(kind="footpath", rows=16, cols=16, spacing_m=100.0),
    regime=STROLL,
    agent=AgentSpec(
        kind="pedestrian", route_style="multi_stop", n_stops=6,
        dwell_range=(30.0, 120.0), estimation_window=8,
    ),
    route_length_m=6_000.0,
    default_seed=108,
    us_values=tuple(WALK_US_SWEEP),
    matching_tolerance=20.0,
))
register_generated(GeneratorSpec(
    name="osm_town_drive",
    description="car wandering a town imported through the OSM ingest pipeline",
    topology=RealMapTopology(fixture="town"),
    regime=SIGNALIZED,
    agent=AgentSpec(kind="car", route_style="wander", straight_bias=0.7),
    route_length_m=15_000.0,
    default_seed=109,
))
register_generated(GeneratorSpec(
    name="osm_town_walk",
    description="pedestrian strolling the imported town's streets and park paths",
    topology=RealMapTopology(fixture="town"),
    regime=STROLL,
    agent=AgentSpec(kind="pedestrian", estimation_window=8),
    route_length_m=5_000.0,
    default_seed=111,
    us_values=tuple(WALK_US_SWEEP),
    matching_tolerance=20.0,
))
# Event-kernel scenarios: heterogeneous sighting rates and Poisson query
# arrivals (the workloads the discrete-event schedule exists for).
register_generated(GeneratorSpec(
    name="mixed_rate_city",
    description=(
        "city car reporting one fix every 5 s (0.2 Hz) — the low-rate side "
        "of a 1 Hz / 0.2 Hz mixed-rate fleet (pair its lanes with "
        "rush_hour_city for the split)"
    ),
    topology=Topology(kind="grid", rows=12, cols=12, spacing_m=240.0),
    regime=SIGNALIZED,
    agent=AgentSpec(
        kind="car", route_style="wander", straight_bias=0.7, sample_interval=5.0
    ),
    route_length_m=18_000.0,
    default_seed=112,
))
register_generated(GeneratorSpec(
    name="poisson_queries_freeway",
    description=(
        "freeway drive serving a Poisson application-query stream "
        "(0.5 queries/s; exact arrival instants need --kernel event)"
    ),
    topology=Topology(kind="corridor", length_km=50.0),
    regime=FREE_FLOW,
    agent=AgentSpec(kind="car", route_style="corridor", estimation_window=2),
    route_length_m=45_000.0,
    default_seed=113,
))
register_generated(GeneratorSpec(
    name="low_power_tracker",
    description=(
        "battery-saving asset tracker waking every 20 s (0.05 Hz) on a "
        "long-haul inter-urban trunk road"
    ),
    topology=Topology(kind="interurban", n_towns=12, town_spacing_km=16.0),
    regime=FREE_FLOW,
    agent=AgentSpec(kind="car", route_style="corridor", sample_interval=20.0),
    route_length_m=170_000.0,
    default_seed=114,
))


# --------------------------------------------------------------------------- #
# imported map files
# --------------------------------------------------------------------------- #
def register_map_file_scenario(
    map_file: str,
    agent_kind: str = "car",
    name: Optional[str] = None,
    bbox: Optional[Sequence[float]] = None,
    cache_dir: Optional[str] = None,
    route_length_m: Optional[float] = None,
) -> str:
    """Register a scenario that runs on an imported OSM extract; return its name.

    This is what ``repro sweep --map-file`` / ``repro fleet --map-file``
    call: the extract goes through the compiled-map cache, and the returned
    name resolves like any library scenario (sweeps, fleets, golden runs on
    user maps).  Registration is idempotent for the same file; a name
    collision with a *different* source raises, so a map file cannot
    shadow a built-in scenario.
    """
    from pathlib import Path

    path = Path(map_file)
    if name is None:
        slug = "".join(ch if ch.isalnum() else "_" for ch in path.stem)
        name = f"osm_{slug}" if not slug.startswith("osm_") else slug
    walking = agent_kind == "pedestrian"
    spec = GeneratorSpec(
        name=name,
        description=f"{agent_kind} on imported map {path.name}",
        topology=RealMapTopology(
            map_file=str(path),
            bbox=tuple(float(v) for v in bbox) if bbox is not None else None,
            cache_dir=cache_dir,
        ),
        regime=STROLL if walking else SIGNALIZED,
        agent=(
            AgentSpec(kind="pedestrian", estimation_window=8)
            if walking
            else AgentSpec(kind="car", route_style="wander", straight_bias=0.7)
        ),
        route_length_m=float(route_length_m or (5_000.0 if walking else 15_000.0)),
        default_seed=0,
        us_values=tuple(WALK_US_SWEEP) if walking else tuple(CAR_US_SWEEP),
        matching_tolerance=20.0 if walking else 30.0,
    )
    if name in _REGISTRY:
        # Idempotent only for the *identical* recipe: silently returning an
        # entry registered with a different bbox, agent or map file would
        # run a sweep the caller did not ask for.
        if GENERATED_SPECS.get(name) == spec:
            return name
        existing = _REGISTRY[name]
        raise ValueError(
            f"scenario name {name!r} is already taken with different options "
            f"(source {existing.knobs.get('source', 'builtin')!r}); pass an "
            f"explicit name for {path.name}"
        )
    register_generated(spec)
    return name


# --------------------------------------------------------------------------- #
# fleet composition
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FleetMix:
    """One homogeneous slice of a heterogeneous fleet.

    ``count`` objects all running *protocol_id* at accuracy *accuracy*
    over the library scenario *scenario*.
    """

    scenario: str
    protocol_id: str
    accuracy: float
    count: int = 1

    def __post_init__(self) -> None:
        get_entry(self.scenario)  # validate early
        if self.protocol_id not in PROTOCOL_IDS:
            raise ValueError(
                f"unknown protocol id {self.protocol_id!r}; expected one of {PROTOCOL_IDS}"
            )
        # `not (x > 0)` also rejects NaN, which `x <= 0` would let through.
        if not (self.accuracy > 0) or self.accuracy == float("inf"):
            raise ValueError("accuracy must be positive and finite")
        if self.count < 1:
            raise ValueError("count must be at least 1")

    @classmethod
    def parse(cls, text: str) -> "FleetMix":
        """Parse ``scenario:protocol:accuracy[:count]`` (the CLI format)."""
        parts = text.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"expected scenario:protocol:accuracy[:count], got {text!r}"
            )
        count = int(parts[3]) if len(parts) == 4 else 1
        return cls(
            scenario=parts[0], protocol_id=parts[1],
            accuracy=float(parts[2]), count=count,
        )


def fleet_lanes(
    mix: Sequence[FleetMix], scale: float = 1.0, seed: Optional[int] = None
) -> List[FleetLane]:
    """Build the lanes of a heterogeneous fleet from *mix* slices.

    Scenarios are resolved through the shared per-process cache (one build
    per distinct scenario regardless of the object count), and every lane
    gets its own protocol instance, as :class:`~repro.sim.fleet.FleetSimulation`
    requires.  Lane ids are ``<scenario>/<protocol>/<us>/<n>``.
    """
    from repro.sim.runner import ScenarioSpec  # runtime import: runner resolves us

    lanes: List[FleetLane] = []
    for m in mix:
        scenario = ScenarioSpec(name=m.scenario, scale=scale, seed=seed).build()
        for n in range(m.count):
            protocol = SimulationConfig(
                protocol_id=m.protocol_id, accuracy=m.accuracy
            ).build_protocol(scenario)
            lanes.append(
                FleetLane(
                    object_id=f"{m.scenario}/{m.protocol_id}/{m.accuracy:g}/{n}",
                    protocol=protocol,
                    sensor_trace=scenario.sensor_trace,
                    truth_trace=scenario.true_trace,
                )
            )
    return lanes
