#!/usr/bin/env python
"""Tracking a walking person (the paper's fourth movement pattern).

Pedestrians are the hardest case for dead reckoning: the movement per second
is comparable to the sensor noise, direction changes are frequent, and the
paper finds that the advantage of the map-based protocol over plain linear
prediction shrinks (and can invert at the tightest accuracy).  This example
reproduces that comparison and also shows the effect of the heading
estimation window (the paper uses n=8 for pedestrians).

Run with::

    python examples/walking_tracking.py
"""

from repro.experiments.report import format_table
from repro.mobility.scenarios import walking_scenario
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.mapbased import MapBasedConfig, MapBasedProtocol
from repro.protocols.reporting import DistanceBasedReporting
from repro.sim.engine import ProtocolSimulation


def run(protocol, scenario):
    return ProtocolSimulation(
        protocol=protocol,
        sensor_trace=scenario.sensor_trace,
        truth_trace=scenario.true_trace,
    ).run()


def main() -> None:
    scenario = walking_scenario(scale=0.5)  # ~5 km walk, about an hour
    summary = scenario.summary()
    print(
        f"Walking {summary['length_km']:.1f} km at "
        f"{summary['average_speed_kmh']:.1f} km/h "
        f"({summary['duration_h'] * 60.0:.0f} minutes)."
    )

    # --- protocol comparison over the walking accuracy sweep -----------------
    rows = []
    for us in scenario.us_values:
        row = {"us [m]": us}
        for label, protocol in (
            ("distance", DistanceBasedReporting(us, scenario.sensor_sigma, 8)),
            ("linear dr", LinearPredictionProtocol(us, scenario.sensor_sigma, 8)),
            (
                "map dr",
                MapBasedProtocol(
                    us, scenario.roadmap, scenario.sensor_sigma, 8,
                    config=MapBasedConfig(matching_tolerance=scenario.matching_tolerance),
                ),
            ),
        ):
            row[f"{label} [upd/h]"] = round(run(protocol, scenario).updates_per_hour, 1)
        rows.append(row)
    print()
    print(format_table(rows, title="Walking person: updates per hour (cf. Fig. 10)"))

    # --- the estimation window matters for slow, noisy movement --------------
    rows = []
    for window in (2, 4, 8, 16):
        protocol = LinearPredictionProtocol(
            accuracy=50.0, sensor_uncertainty=scenario.sensor_sigma,
            estimation_window=window,
        )
        result = run(protocol, scenario)
        rows.append(
            {
                "estimation window n": window,
                "updates/h": round(result.updates_per_hour, 1),
                "mean error [m]": round(result.metrics.mean_error, 1),
            }
        )
    print()
    print(
        format_table(
            rows,
            title="Effect of the heading-estimation window at us = 50 m "
            "(the paper uses n = 8 for pedestrians)",
        )
    )


if __name__ == "__main__":
    main()
