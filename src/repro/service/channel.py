"""Message channel between source and location server.

The paper motivates dead reckoning with the scarcity and cost of wireless
WAN bandwidth; the channel model here accounts for every transmitted message
and byte so the evaluation can report bandwidth alongside update counts, and
it can add latency and losses for robustness experiments (losses model the
disconnections Wolfson's dtdr strategy addresses).

The channel supports both simulation kernels:

* Under the **tick** loop, messages queue in an in-flight list and
  :meth:`MessageChannel.deliver_due` pops everything whose delivery time
  has been reached — i.e. a message sent at ``t`` with latency ``L`` is
  delivered at the first tick ``>= t + L``.  This tick-quantised behaviour
  is deliberately unchanged; the quantisation it introduces is measured by
  :attr:`ChannelStats.max_queue_delay` (the worst observed gap between a
  message's nominal delivery instant and the tick that actually delivered
  it — exactly ``0`` when latency is a tick multiple).
* Under the **event** kernel, a delivery *scheduler* is bound via
  :meth:`MessageChannel.bind_scheduler`; ``send`` then hands every message
  straight to the kernel as a delivery event at exactly ``t + L``, so
  latency is exact and ``max_queue_delay`` stays ``0``.

Losses are drawn **per message**, keyed by ``(seed, object_id, sequence)``
rather than by consuming a shared RNG stream in send order.  Send
interleaving differs between the tick and event kernels (and between fleet
compositions), so a stream-ordered draw would make the loss pattern an
artifact of the scheduler; the keyed draw gives bit-identical loss
sequences for the same seed on either kernel.  Unseeded channels keep the
legacy stream draw (they are non-reproducible by construction).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.protocols.base import UpdateMessage

#: Signature of the event-kernel delivery hook bound by the fleet loop:
#: ``scheduler(deliver_at, object_id, message)``.
DeliveryScheduler = Callable[[float, str, UpdateMessage], None]


def delivery_order(entry: Tuple[float, str, UpdateMessage]) -> Tuple[float, str, int]:
    """Canonical sort key for a batch of ``(deliver_at, object_id, message)``.

    Two messages can share ``(deliver_at, object_id)`` — a zero-latency
    channel carrying a SAMPLE-triggered and a TIMER-triggered send from the
    same instant, for example — and :class:`UpdateMessage` is a frozen
    dataclass without ``order=True``, so sorting raw tuples would fall
    through to comparing messages and raise ``TypeError``.  The message's
    sequence number is the deterministic tie-break (send order per object);
    both kernels' delivery paths sort with this key.
    """
    deliver_at, object_id, message = entry
    return (deliver_at, object_id, message.sequence)


@dataclass(slots=True)
class ChannelStats:
    """Counters describing the traffic that went through a channel.

    Slotted: every fleet channel touches these counters once per message,
    and worker processes ship them back to the parent for merging."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_lost: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    #: Worst observed queueing delay in seconds: how long a message sat in
    #: the in-flight queue *past* its nominal delivery instant
    #: ``send_time + latency`` before a tick picked it up.  Exactly ``0``
    #: under the event kernel (delivery events fire at the exact instant)
    #: and whenever latency is a tick multiple.
    max_queue_delay: float = 0.0

    @property
    def loss_rate(self) -> float:
        """Fraction of sent messages that were lost."""
        if self.messages_sent == 0:
            return 0.0
        return self.messages_lost / self.messages_sent


class MessageChannel:
    """Unidirectional source-to-server channel with latency and loss.

    Parameters
    ----------
    latency:
        Constant one-way delay in seconds added to every delivered message.
    loss_probability:
        Probability that a message is silently dropped.
    seed:
        Seed for the loss process.  Seeded channels draw each message's
        loss independently from ``(seed, object_id, sequence)``, so the
        loss pattern is identical on both simulation kernels and across
        repeated runs; unseeded channels draw from a process-random stream.
    """

    def __init__(
        self, latency: float = 0.0, loss_probability: float = 0.0, seed: Optional[int] = None
    ):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if not (0.0 <= loss_probability < 1.0):
            raise ValueError("loss_probability must be in [0, 1)")
        self.latency = float(latency)
        self.loss_probability = float(loss_probability)
        self._seed = seed
        self._rng = random.Random(seed)
        self.stats = ChannelStats()
        self._in_flight: List[Tuple[float, str, UpdateMessage]] = []
        self._scheduler: Optional[DeliveryScheduler] = None

    # ------------------------------------------------------------------ #
    # event-kernel binding
    # ------------------------------------------------------------------ #
    def bind_scheduler(self, scheduler: DeliveryScheduler) -> None:
        """Route subsequent sends to *scheduler* as exact delivery events.

        Bound by the event kernel for the duration of a run; while bound,
        nothing enters the in-flight queue.  A channel can serve one kernel
        at a time.
        """
        if self._scheduler is not None:
            raise RuntimeError("channel is already bound to a delivery scheduler")
        self._scheduler = scheduler

    def unbind_scheduler(self) -> None:
        """Detach the event-kernel delivery hook (back to tick queueing)."""
        self._scheduler = None

    # ------------------------------------------------------------------ #
    # sending and delivering
    # ------------------------------------------------------------------ #
    def send(self, object_id: str, message: UpdateMessage, time: float) -> None:
        """Submit a message for delivery at ``time + latency`` (unless lost)."""
        self.stats.messages_sent += 1
        self.stats.bytes_sent += message.size_bytes
        if self.loss_probability > 0.0 and self._is_lost(object_id, message):
            self.stats.messages_lost += 1
            return
        if self._scheduler is not None:
            self._scheduler(time + self.latency, object_id, message)
        else:
            self._in_flight.append((time + self.latency, object_id, message))

    def _is_lost(self, object_id: str, message: UpdateMessage) -> bool:
        """Decide this message's fate (see the module docstring).

        The keyed draw hashes the key through BLAKE2b — a proper PRF, so
        consecutive sequence numbers give serially *uncorrelated* Bernoulli
        draws (a CRC would correlate neighbouring keys, clustering losses),
        and the digest is stable across processes (unlike ``hash()`` of a
        string under ``PYTHONHASHSEED``).
        """
        if self._seed is None:
            return self._rng.random() < self.loss_probability
        key = f"{self._seed}|{object_id}|{message.sequence}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        draw = int.from_bytes(digest, "big") / 2.0**64  # uniform in [0, 1)
        return draw < self.loss_probability

    def deliver_due(self, time: float) -> List[Tuple[str, UpdateMessage]]:
        """Pop every message whose delivery time has been reached.

        This is the tick path: a message becomes visible at the first tick
        at or after its nominal delivery instant (unchanged behaviour); the
        quantisation gap is recorded on :attr:`ChannelStats.max_queue_delay`.
        """
        if not self._in_flight:
            return []
        due = [entry for entry in self._in_flight if entry[0] <= time]
        if due:
            self._in_flight = [entry for entry in self._in_flight if entry[0] > time]
            self.stats.messages_delivered += len(due)
            self.stats.bytes_delivered += sum(m.size_bytes for _, _, m in due)
            worst = max(time - deliver_at for deliver_at, _, _ in due)
            if worst > self.stats.max_queue_delay:
                self.stats.max_queue_delay = worst
        due.sort(key=delivery_order)
        return [(object_id, message) for _, object_id, message in due]

    def record_scheduled_delivery(self, messages: List[Tuple[str, UpdateMessage]]) -> None:
        """Account for messages the event kernel just delivered exactly.

        The event path's counterpart of the accounting inside
        :meth:`deliver_due`: delivery happens at the exact nominal instant,
        so the queueing delay is zero by construction.
        """
        if not messages:
            return
        self.stats.messages_delivered += len(messages)
        self.stats.bytes_delivered += sum(m.size_bytes for _, m in messages)

    def reset(self) -> None:
        """Drop all in-flight messages, zero the statistics, unbind any scheduler.

        Simulations call this at run start so that a caller-supplied channel
        cannot leak undelivered messages (or counters) from a previous run
        into the next one.  A scheduler left bound by a previous run would
        be worse than a leak: sends would keep landing on the *dead*
        kernel's agenda and silently never reach the new run's server, so
        the binding is dropped here too (an event-kernel run re-binds after
        resetting).  Seeded channels draw losses per message (keyed by
        object and sequence number), so repeated runs over one channel
        replay the same loss pattern — that is the reproducibility contract.
        The unseeded stream RNG is deliberately left alone: resetting it
        would turn independent runs into replays.
        """
        self._in_flight.clear()
        self._scheduler = None
        self.stats = ChannelStats()

    @property
    def in_flight(self) -> int:
        """Number of messages currently in transit (tick path only; the
        event kernel keeps pending deliveries on its own agenda)."""
        return len(self._in_flight)
