"""Small 2-D vector helpers.

Positions are represented throughout the library as NumPy arrays of shape
``(2,)`` holding ``float64`` metres.  The helpers below are thin, allocation
conscious wrappers around NumPy operations; they accept anything array-like
(tuples, lists, arrays) and always return plain ``numpy`` objects so that the
rest of the code can freely mix literals and computed values.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Union

import numpy as np

#: Type alias accepted by every function that expects a 2-D point or vector.
Vec2 = Union[np.ndarray, Sequence[float], Iterable[float]]


def as_vec(value: Vec2) -> np.ndarray:
    """Coerce *value* into a ``float64`` NumPy array of shape ``(2,)``.

    The function is the single normalisation point for user supplied
    coordinates; every public API that accepts positions funnels its input
    through it.

    Raises
    ------
    ValueError
        If *value* does not describe exactly two finite coordinates.
    """
    if type(value) is np.ndarray and value.shape == (2,) and value.dtype == np.float64:
        # Fast path for the simulation hot loops: already-normalised arrays
        # skip the asarray dispatch, and the finiteness check degenerates to
        # two scalar tests.
        if math.isfinite(value[0]) and math.isfinite(value[1]):
            return value
        raise ValueError(f"coordinates must be finite, got {value!r}")
    arr = np.asarray(value, dtype=float)
    if arr.shape != (2,):
        raise ValueError(f"expected a 2-D point, got shape {arr.shape!r}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"coordinates must be finite, got {arr!r}")
    return arr


def distance_sq(a: Vec2, b: Vec2) -> float:
    """Squared Euclidean distance between two points (avoids the sqrt)."""
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    dx = ax - bx
    dy = ay - by
    return dx * dx + dy * dy


def distance(a: Vec2, b: Vec2) -> float:
    """Euclidean distance between two points in metres."""
    return math.sqrt(distance_sq(a, b))


def norm(v: Vec2) -> float:
    """Euclidean length of a vector."""
    x, y = float(v[0]), float(v[1])
    return math.hypot(x, y)


def normalize(v: Vec2) -> np.ndarray:
    """Return the unit vector pointing in the direction of *v*.

    A zero vector is returned unchanged (rather than raising) because the
    protocols frequently deal with stationary objects whose velocity vector
    is exactly zero.
    """
    arr = as_vec(v)
    length = math.hypot(arr[0], arr[1])
    if length == 0.0:
        return arr.copy()
    return arr / length


def dot(a: Vec2, b: Vec2) -> float:
    """Dot product of two 2-D vectors."""
    return float(a[0]) * float(b[0]) + float(a[1]) * float(b[1])


def cross(a: Vec2, b: Vec2) -> float:
    """Z component of the 3-D cross product (signed parallelogram area)."""
    return float(a[0]) * float(b[1]) - float(a[1]) * float(b[0])


def lerp(a: Vec2, b: Vec2, t: float) -> np.ndarray:
    """Linear interpolation between *a* (``t == 0``) and *b* (``t == 1``)."""
    av = as_vec(a)
    bv = as_vec(b)
    return av + (bv - av) * float(t)


def rotate(v: Vec2, angle: float) -> np.ndarray:
    """Rotate vector *v* counter-clockwise by *angle* radians."""
    arr = as_vec(v)
    c = math.cos(angle)
    s = math.sin(angle)
    return np.array([c * arr[0] - s * arr[1], s * arr[0] + c * arr[1]])


def perpendicular(v: Vec2) -> np.ndarray:
    """Return *v* rotated by +90 degrees (counter-clockwise)."""
    arr = as_vec(v)
    return np.array([-arr[1], arr[0]])
