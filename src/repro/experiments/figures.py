"""Figures 3/6 and 7-10: protocol comparison across requested accuracies.

Each of the paper's Figures 7-10 shows, for one movement scenario, the
number of update messages per hour (left plot) and the same numbers relative
to the non-dead-reckoning distance-based protocol (right plot), for requested
accuracies between 20 m and 500 m (250 m for the walking scenario).
:func:`figure_for_scenario` computes both plots' data; ``figure7`` ...
``figure10`` bind it to the individual scenarios.

Figures 3 and 6 of the paper are simulator screenshots showing the updates
generated on one particular route by the linear-prediction and the map-based
protocol; :func:`route_update_counts` reproduces their quantitative content
(the update counts for the same route and the same requested accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.scenarios import get_scenario
from repro.mobility.scenarios import Scenario, ScenarioName
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.sim.runner import ScenarioSpec, SweepRunner, SweepTask
from repro.sim.sweep import SweepPoint

#: Protocols plotted in Figures 7-10, in the paper's order.
FIGURE_PROTOCOLS = ("distance", "linear", "map")

#: Display names matching the figure legends of the paper.
PROTOCOL_LABELS = {
    "distance": "distance-based reporting",
    "linear": "linear-pred dr",
    "map": "map-based dr",
}


@dataclass
class FigureSeries:
    """One curve of a figure: a protocol's updates/hour over the accuracy sweep."""

    protocol_id: str
    label: str
    points: List[SweepPoint]

    @property
    def accuracies(self) -> List[float]:
        """The x axis: requested accuracy ``us`` in metres."""
        return [p.accuracy for p in self.points]

    @property
    def updates_per_hour(self) -> List[float]:
        """The left-plot y axis: update messages per hour."""
        return [p.updates_per_hour for p in self.points]

    def relative_to(self, baseline: "FigureSeries") -> List[float]:
        """The right-plot y axis: percentage of the baseline's update count."""
        out: List[float] = []
        for mine, theirs in zip(self.points, baseline.points):
            if theirs.updates_per_hour <= 0:
                out.append(0.0)
            else:
                out.append(100.0 * mine.updates_per_hour / theirs.updates_per_hour)
        return out


@dataclass
class FigureResult:
    """All data of one of the paper's Figures 7-10."""

    scenario_name: str
    description: str
    series: Dict[str, FigureSeries]

    @property
    def baseline(self) -> FigureSeries:
        """The distance-based reporting curve (the 100% reference)."""
        return self.series["distance"]

    def relative_series(self) -> Dict[str, List[float]]:
        """Right-hand plot: every protocol as a percentage of the baseline."""
        return {
            protocol_id: series.relative_to(self.baseline)
            for protocol_id, series in self.series.items()
        }

    def reduction_vs_baseline(self, protocol_id: str) -> float:
        """Largest reduction (%) of *protocol_id* against the baseline over the sweep."""
        relative = self.series[protocol_id].relative_to(self.baseline)
        if not relative:
            return 0.0
        return 100.0 - min(relative)

    def reduction_between(self, protocol_id: str, reference_id: str) -> float:
        """Largest reduction (%) of one protocol against another over the sweep."""
        target = self.series[protocol_id]
        reference = self.series[reference_id]
        best = 0.0
        for mine, theirs in zip(target.points, reference.points):
            if theirs.updates_per_hour <= 0:
                continue
            reduction = 100.0 * (1.0 - mine.updates_per_hour / theirs.updates_per_hour)
            best = max(best, reduction)
        return best

    def as_rows(self) -> List[Dict[str, object]]:
        """Tabular form: one row per requested accuracy with every protocol's value."""
        rows: List[Dict[str, object]] = []
        accuracies = self.baseline.accuracies
        relative = self.relative_series()
        for i, us in enumerate(accuracies):
            row: Dict[str, object] = {"us [m]": us}
            for protocol_id, series in self.series.items():
                row[f"{series.label} [upd/h]"] = round(series.updates_per_hour[i], 1)
            for protocol_id, series in self.series.items():
                if protocol_id == "distance":
                    continue
                row[f"{series.label} [% of baseline]"] = round(relative[protocol_id][i], 1)
            rows.append(row)
        return rows


# --------------------------------------------------------------------------- #
# figure runners
# --------------------------------------------------------------------------- #
def figure_for_scenario(
    scenario: Union[Scenario, ScenarioSpec],
    protocol_ids: Sequence[str] = FIGURE_PROTOCOLS,
    accuracies: Optional[Sequence[float]] = None,
    runner: Optional[SweepRunner] = None,
) -> FigureResult:
    """Compute the Figure 7-10 data for an arbitrary scenario.

    Given a :class:`~repro.sim.runner.ScenarioSpec`, all protocol × accuracy
    points are submitted to the runner as one flat task batch, so a parallel
    runner spreads the whole figure over its workers; a plain
    :class:`Scenario` runs in-process.
    """
    runner = runner or SweepRunner()
    if isinstance(scenario, ScenarioSpec):
        built = scenario.build()
        us_values = list(accuracies if accuracies is not None else built.us_values)
        pairs = [(protocol_id, us) for protocol_id in protocol_ids for us in us_values]
        tasks = [
            SweepTask(
                scenario=scenario,
                config=SimulationConfig(protocol_id=protocol_id, accuracy=float(us)),
            )
            for protocol_id, us in pairs
        ]
        points = runner.run_tasks(tasks)
        per_protocol: Dict[str, List[SweepPoint]] = {pid: [] for pid in protocol_ids}
        for (protocol_id, _us), point in zip(pairs, points):
            per_protocol[protocol_id].append(point)
    else:
        built = scenario
        per_protocol = {
            protocol_id: runner.run_config_sweep(scenario, protocol_id, accuracies)
            for protocol_id in protocol_ids
        }
    series: Dict[str, FigureSeries] = {
        protocol_id: FigureSeries(
            protocol_id=protocol_id,
            label=PROTOCOL_LABELS.get(protocol_id, protocol_id),
            points=per_protocol[protocol_id],
        )
        for protocol_id in protocol_ids
    }
    return FigureResult(
        scenario_name=built.key,
        description=built.description,
        series=series,
    )


def _figure(
    name: ScenarioName,
    scale: float,
    accuracies: Optional[Sequence[float]],
    jobs: int,
    runner: Optional[SweepRunner],
) -> FigureResult:
    spec = ScenarioSpec(name=name.value, scale=float(scale))
    if runner is not None:
        return figure_for_scenario(spec, accuracies=accuracies, runner=runner)
    with SweepRunner(jobs=jobs) as owned:
        return figure_for_scenario(spec, accuracies=accuracies, runner=owned)


def figure7(
    scale: float = 1.0,
    accuracies: Optional[Sequence[float]] = None,
    jobs: int = 1,
    runner: Optional[SweepRunner] = None,
) -> FigureResult:
    """Fig. 7 — freeway traffic."""
    return _figure(ScenarioName.FREEWAY, scale, accuracies, jobs, runner)


def figure8(
    scale: float = 1.0,
    accuracies: Optional[Sequence[float]] = None,
    jobs: int = 1,
    runner: Optional[SweepRunner] = None,
) -> FigureResult:
    """Fig. 8 — inter-urban traffic."""
    return _figure(ScenarioName.INTERURBAN, scale, accuracies, jobs, runner)


def figure9(
    scale: float = 1.0,
    accuracies: Optional[Sequence[float]] = None,
    jobs: int = 1,
    runner: Optional[SweepRunner] = None,
) -> FigureResult:
    """Fig. 9 — city traffic."""
    return _figure(ScenarioName.CITY, scale, accuracies, jobs, runner)


def figure10(
    scale: float = 1.0,
    accuracies: Optional[Sequence[float]] = None,
    jobs: int = 1,
    runner: Optional[SweepRunner] = None,
) -> FigureResult:
    """Fig. 10 — walking person."""
    return _figure(ScenarioName.WALKING, scale, accuracies, jobs, runner)


def route_update_counts(
    scale: float = 1.0, accuracy: float = 200.0, scenario_name: ScenarioName = ScenarioName.FREEWAY
) -> Dict[str, SimulationResult]:
    """Figures 3 and 6: updates generated on one route at one accuracy.

    The paper's screenshots show 9 updates with linear prediction and 3 with
    the map-based protocol on the same freeway stretch; the interesting
    quantity is the ratio, which this experiment reports for the full
    scenario route.
    """
    scenario = get_scenario(scenario_name, scale=scale)
    runner = SweepRunner()
    out: Dict[str, SimulationResult] = {}
    for protocol_id in ("linear", "map"):
        protocol = SimulationConfig(protocol_id=protocol_id, accuracy=accuracy).build_protocol(
            scenario
        )
        out[protocol_id] = runner.run_single(scenario, protocol)
    return out


def headline_reductions(
    scale: float = 1.0, jobs: int = 1, runner: Optional[SweepRunner] = None
) -> Dict[str, Dict[str, float]]:
    """The reductions quoted in the paper's abstract and Section 4.

    Returns, per scenario, the maximum reduction of linear-prediction DR
    versus distance-based reporting, of map-based DR versus linear DR, and
    of map-based DR versus distance-based reporting (the paper quotes up to
    83%, 60% and 91% respectively).
    """
    if runner is None:
        with SweepRunner(jobs=jobs) as owned:
            return headline_reductions(scale=scale, runner=owned)
    out: Dict[str, Dict[str, float]] = {}
    for name, figure_runner in (
        (ScenarioName.FREEWAY, figure7),
        (ScenarioName.INTERURBAN, figure8),
        (ScenarioName.CITY, figure9),
        (ScenarioName.WALKING, figure10),
    ):
        figure = figure_runner(scale=scale, runner=runner)
        out[name.value] = {
            "linear_vs_distance_pct": round(figure.reduction_vs_baseline("linear"), 1),
            "map_vs_linear_pct": round(figure.reduction_between("map", "linear"), 1),
            "map_vs_distance_pct": round(figure.reduction_vs_baseline("map"), 1),
        }
    return out
