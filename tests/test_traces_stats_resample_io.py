"""Unit tests for repro.traces.stats, repro.traces.resample and repro.traces.io."""

import numpy as np
import pytest

from repro.geo.geodesy import LocalProjection
from repro.traces.io import load_trace_csv, load_trace_wgs84_csv, save_trace_csv
from repro.traces.resample import decimate, resample_uniform
from repro.traces.stats import compute_statistics
from repro.traces.trace import Trace


class TestStatistics:
    def test_straight_trace_statistics(self, straight_trace):
        stats = compute_statistics(straight_trace)
        assert stats.length_km == pytest.approx(1.2)
        assert stats.duration_h == pytest.approx(60.0 / 3600.0)
        assert stats.average_speed_kmh == pytest.approx(72.0)
        assert stats.max_speed_kmh == pytest.approx(72.0)
        assert stats.n_samples == 61

    def test_smoothed_max_below_raw_max_for_noisy_trace(self):
        rng = np.random.default_rng(0)
        times = np.arange(0.0, 600.0)
        truth = np.column_stack((times * 10.0, np.zeros_like(times)))
        noisy = truth + rng.normal(0.0, 5.0, truth.shape)
        stats = compute_statistics(Trace(times, noisy))
        assert stats.smoothed_max_speed_kmh < stats.max_speed_kmh

    def test_as_row_keys(self, straight_trace):
        row = compute_statistics(straight_trace).as_row()
        assert "length [km]" in row
        assert "avg speed [km/h]" in row

    def test_single_sample_trace(self):
        stats = compute_statistics(Trace([0.0], np.array([[0.0, 0.0]])))
        assert stats.length_km == 0.0
        assert stats.average_speed_kmh == 0.0


class TestResample:
    def test_resample_interval(self, straight_trace):
        resampled = resample_uniform(straight_trace, 2.0)
        assert resampled.sampling_interval == pytest.approx(2.0)
        assert resampled.times[0] == straight_trace.times[0]
        assert resampled.times[-1] == pytest.approx(straight_trace.times[-1])

    def test_resample_preserves_linear_motion(self, straight_trace):
        resampled = resample_uniform(straight_trace, 0.5)
        speeds = resampled.speeds()
        np.testing.assert_allclose(speeds, 20.0, atol=1e-9)

    def test_resample_invalid(self, straight_trace):
        with pytest.raises(ValueError):
            resample_uniform(straight_trace, 0.0)
        with pytest.raises(ValueError):
            resample_uniform(Trace([0.0], np.array([[0.0, 0.0]])), 1.0)

    def test_decimate(self, straight_trace):
        decimated = decimate(straight_trace, 10)
        assert len(decimated) == 7
        assert decimated.times[1] == 10.0

    def test_decimate_invalid(self, straight_trace):
        with pytest.raises(ValueError):
            decimate(straight_trace, 0)


class TestCsvIo:
    def test_roundtrip(self, tmp_path, l_shaped_trace):
        path = tmp_path / "trace.csv"
        save_trace_csv(l_shaped_trace, path)
        loaded = load_trace_csv(path, name="roundtrip")
        assert len(loaded) == len(l_shaped_trace)
        np.testing.assert_allclose(loaded.times, l_shaped_trace.times, atol=1e-3)
        np.testing.assert_allclose(loaded.positions, l_shaped_trace.positions, atol=1e-3)
        assert loaded.name == "roundtrip"

    def test_load_rejects_wrong_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            load_trace_csv(path)

    def test_load_wgs84(self, tmp_path):
        projection = LocalProjection(ref_lat=48.7, ref_lon=9.1)
        path = tmp_path / "wgs.csv"
        path.write_text(
            "time,lat,lon\n0,48.7,9.1\n1,48.701,9.1\n2,48.702,9.1\n"
        )
        trace = load_trace_wgs84_csv(path, projection=projection)
        assert len(trace) == 3
        assert trace.positions[0].tolist() == [0.0, 0.0]
        # 0.001 degrees of latitude is roughly 111 m.
        assert trace.positions[1][1] == pytest.approx(111.0, rel=0.01)

    def test_load_wgs84_default_projection(self, tmp_path):
        path = tmp_path / "wgs2.csv"
        path.write_text("time,lat,lon\n0,48.7,9.1\n1,48.7005,9.1\n")
        trace = load_trace_wgs84_csv(path)
        assert trace.positions[0].tolist() == [0.0, 0.0]

    def test_load_wgs84_empty_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time,lat,lon\n")
        with pytest.raises(ValueError):
            load_trace_wgs84_csv(path)
