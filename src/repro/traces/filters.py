"""Position filters for noisy sensor streams.

The related-work section of the paper notes that navigation systems smooth
GPS fixes with Kalman-style filters before map matching.  The protocols do
not require filtering — the matching tolerance ``um`` absorbs the sensor
noise — but a light-weight filter in front of the source reduces the jitter
of the speed/heading estimate, which matters at walking speeds where the
per-second movement is comparable to the noise.

Two online filters are provided (both causal, O(1) per sample, and therefore
usable inside the 1 Hz source loop):

* :class:`MovingAverageFilter` — a sliding-window mean;
* :class:`AlphaBetaFilter` — a fixed-gain position/velocity tracker, the
  steady-state form of a Kalman filter with constant process/measurement
  noise.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.geo.vec import Vec2, as_vec
from repro.traces.trace import Trace


class MovingAverageFilter:
    """Sliding-window mean of the last *window* position fixes.

    Simple and robust, but introduces a lag of roughly half the window
    duration, so it is best suited to slow movement (pedestrians).
    """

    def __init__(self, window: int = 5):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = int(window)
        self._positions: Deque[np.ndarray] = deque(maxlen=window)

    def reset(self) -> None:
        """Forget all past fixes."""
        self._positions.clear()

    def update(self, time: float, position: Vec2) -> np.ndarray:
        """Feed one fix and return the filtered position."""
        self._positions.append(as_vec(position))
        return np.mean(np.array(self._positions), axis=0)

    def filter_trace(self, trace: Trace) -> Trace:
        """Filter a whole trace (stateless convenience wrapper)."""
        self.reset()
        filtered = np.array(
            [self.update(t, p) for t, p in zip(trace.times, trace.positions)]
        )
        self.reset()
        return trace.with_positions(filtered)


class AlphaBetaFilter:
    """Fixed-gain position/velocity tracker (alpha-beta filter).

    Each step predicts the position from the previous estimate and velocity,
    then corrects both with the measurement residual:

    ``x_pred = x + v * dt``;  ``x = x_pred + alpha * r``;  ``v += beta * r / dt``

    with ``r = measurement - x_pred``.  ``alpha`` close to 1 trusts the
    sensor, close to 0 trusts the motion model.

    Parameters
    ----------
    alpha:
        Position correction gain in ``(0, 1]``.
    beta:
        Velocity correction gain in ``(0, 2)``; usually much smaller than
        ``alpha``.
    """

    def __init__(self, alpha: float = 0.85, beta: float = 0.3):
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        if not (0.0 < beta < 2.0):
            raise ValueError("beta must be in (0, 2)")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._position: Optional[np.ndarray] = None
        self._velocity = np.zeros(2)
        self._time: Optional[float] = None

    def reset(self) -> None:
        """Forget the current state."""
        self._position = None
        self._velocity = np.zeros(2)
        self._time = None

    @property
    def velocity(self) -> np.ndarray:
        """The filter's current velocity estimate (m/s)."""
        return self._velocity.copy()

    def update(self, time: float, position: Vec2) -> np.ndarray:
        """Feed one fix and return the filtered position."""
        measurement = as_vec(position)
        if self._position is None or self._time is None:
            self._position = measurement.copy()
            self._time = float(time)
            return self._position.copy()
        dt = float(time) - self._time
        if dt <= 0.0:
            raise ValueError("timestamps must be strictly increasing")
        predicted = self._position + self._velocity * dt
        residual = measurement - predicted
        self._position = predicted + self.alpha * residual
        self._velocity = self._velocity + (self.beta / dt) * residual
        self._time = float(time)
        return self._position.copy()

    def filter_trace(self, trace: Trace) -> Trace:
        """Filter a whole trace (stateless convenience wrapper)."""
        self.reset()
        filtered = np.array(
            [self.update(t, p) for t, p in zip(trace.times, trace.positions)]
        )
        self.reset()
        return trace.with_positions(filtered)
