"""Road-map elements: intersections, links and road classes.

These classes mirror the map information the paper's protocol requires
(Sec. 3): intersections with a unique identifier and exact location, links
identified by a unique identifier and refined by shape points, plus the
optional attributes (road class, speed limit) the paper lists as further
information that can be extracted from a navigation map.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geo.polyline import Polyline
from repro.geo.vec import Vec2, as_vec
from repro.geo.bbox import BoundingBox


class RoadClass(enum.Enum):
    """Coarse functional classification of a road link.

    The map-based protocol can use the class to prefer "main roads" when
    choosing an outgoing link at an intersection and to derive default speed
    limits, exactly the kind of additional map information the paper says can
    be extracted from a car-navigation map.
    """

    MOTORWAY = "motorway"
    PRIMARY = "primary"
    SECONDARY = "secondary"
    RESIDENTIAL = "residential"
    FOOTPATH = "footpath"

    @property
    def default_speed_limit(self) -> float:
        """Default legal speed for the class, in metres per second."""
        return _DEFAULT_SPEED_LIMITS[self]

    @property
    def priority(self) -> int:
        """Relative importance (higher = more major road)."""
        return _CLASS_PRIORITY[self]


_DEFAULT_SPEED_LIMITS = {
    RoadClass.MOTORWAY: 130.0 / 3.6,
    RoadClass.PRIMARY: 100.0 / 3.6,
    RoadClass.SECONDARY: 70.0 / 3.6,
    RoadClass.RESIDENTIAL: 50.0 / 3.6,
    RoadClass.FOOTPATH: 6.0 / 3.6,
}

_CLASS_PRIORITY = {
    RoadClass.MOTORWAY: 5,
    RoadClass.PRIMARY: 4,
    RoadClass.SECONDARY: 3,
    RoadClass.RESIDENTIAL: 2,
    RoadClass.FOOTPATH: 1,
}


@dataclass(frozen=True)
class Intersection:
    """A node of the road network.

    Parameters
    ----------
    id:
        Unique identifier.
    position:
        Exact geographical location in local planar metres.
    """

    id: int
    position: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", as_vec(self.position))

    def distance_to(self, point: Vec2) -> float:
        """Euclidean distance from the intersection to *point*."""
        p = as_vec(point)
        return float(np.hypot(*(self.position - p)))


@dataclass(frozen=True)
class Link:
    """A directed link between two intersections.

    The link geometry runs from the position of ``from_node`` to the position
    of ``to_node`` and may be refined by intermediate shape points; the full
    geometry is exposed as :attr:`geometry`, a :class:`~repro.geo.Polyline`.

    Parameters
    ----------
    id:
        Unique identifier of the link.
    from_node, to_node:
        Identifiers of the start and end intersections.
    geometry:
        Polyline from the start to the end intersection (including the
        intersection positions themselves as first/last vertices).
    road_class:
        Functional classification, used by turn policies and the mobility
        simulator.
    speed_limit:
        Speed limit in metres per second; defaults to the class default.
    name:
        Optional human-readable name (useful in examples and reports).
    """

    id: int
    from_node: int
    to_node: int
    geometry: Polyline
    road_class: RoadClass = RoadClass.SECONDARY
    speed_limit: Optional[float] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.speed_limit is None:
            object.__setattr__(self, "speed_limit", self.road_class.default_speed_limit)
        if self.speed_limit <= 0:
            raise ValueError("speed_limit must be positive")

    # ------------------------------------------------------------------ #
    # geometry shortcuts
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> float:
        """Arc length of the link geometry in metres."""
        return self.geometry.length

    @property
    def start_position(self) -> np.ndarray:
        """Position of the start intersection."""
        return self.geometry.start

    @property
    def end_position(self) -> np.ndarray:
        """Position of the end intersection."""
        return self.geometry.end

    def bounds(self) -> BoundingBox:
        """Bounding box of the link geometry."""
        return BoundingBox(*self.geometry.bounds())

    def point_at(self, offset: float) -> np.ndarray:
        """Point at arc-length *offset* metres from the start intersection."""
        return self.geometry.point_at(offset)

    def direction_at(self, offset: float) -> np.ndarray:
        """Unit direction of travel at arc-length *offset*."""
        return self.geometry.direction_at(offset)

    def bearing_at(self, offset: float) -> float:
        """Compass bearing of travel at arc-length *offset*."""
        return self.geometry.bearing_at(offset)

    def project(self, point: Vec2) -> tuple[np.ndarray, float, float]:
        """Project *point* onto the link: ``(matched_point, offset, distance)``."""
        return self.geometry.project(point)

    def distance_to(self, point: Vec2) -> float:
        """Shortest distance from *point* to the link geometry."""
        return self.geometry.distance_to(point)

    def entry_bearing(self) -> float:
        """Bearing of the first sub-link (direction when entering the link)."""
        return self.geometry.bearing_at(0.0)

    def exit_bearing(self) -> float:
        """Bearing of the last sub-link (direction when leaving the link)."""
        return self.geometry.bearing_at(self.geometry.length)

    def shape_points(self) -> np.ndarray:
        """Intermediate shape points (vertices excluding the two endpoints)."""
        return self.geometry.points[1:-1]

    def travel_time(self, speed: Optional[float] = None) -> float:
        """Time to traverse the link at *speed* (defaults to the speed limit)."""
        v = self.speed_limit if speed is None else speed
        if v <= 0:
            raise ValueError("speed must be positive")
        return self.length / v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link(id={self.id}, {self.from_node}->{self.to_node}, "
            f"{self.length:.0f} m, {self.road_class.value})"
        )
