"""E8 — headline reductions quoted in the abstract and Section 4.

"While a simple dead-reckoning protocol already reduces the number of update
messages by up to 83%, the map-based protocol further reduces their number
by again up to 60%." (overall up to 91%, Sec. 6)

This benchmark computes, for every scenario, the maximum reduction of
linear-prediction DR vs distance-based reporting, of map-based DR vs linear
DR and of map-based DR vs distance-based reporting over the accuracy sweep.
"""

from repro.experiments.figures import headline_reductions
from repro.experiments.report import format_table

from conftest import run_once

#: The paper's quoted maxima, for side-by-side printing.
PAPER_HEADLINES = {
    "freeway": {"linear_vs_distance_pct": 83.0, "map_vs_linear_pct": 60.0, "map_vs_distance_pct": 91.0},
    "city": {"linear_vs_distance_pct": 63.0},
}


def test_headline_reductions(benchmark, scale):
    reductions = run_once(benchmark, headline_reductions, scale=scale)
    rows = []
    for scenario, values in reductions.items():
        row = {"scenario": scenario}
        row.update(values)
        for key, paper_value in PAPER_HEADLINES.get(scenario, {}).items():
            row[f"paper {key}"] = paper_value
        rows.append(row)
    print()
    print(format_table(rows, title="Maximum update-rate reductions (percent)"))

    freeway = reductions["freeway"]
    # Direction and rough magnitude of the paper's headline claims.
    assert freeway["linear_vs_distance_pct"] >= 60.0
    assert freeway["map_vs_linear_pct"] >= 30.0
    assert freeway["map_vs_distance_pct"] >= 80.0
    # The freeway benefits more from the map than the city (Sec. 4).
    assert freeway["map_vs_linear_pct"] >= reductions["city"]["map_vs_linear_pct"]
