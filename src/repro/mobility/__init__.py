"""Mobility simulation: generating realistic movement traces.

The paper evaluates its protocols on four recorded GPS traces (car on a
freeway, car in inter-urban traffic, car in city traffic, walking person).
Those recordings are not available, so this package simulates the movement
of vehicles and pedestrians over the synthetic road networks of
:mod:`repro.roadmap.generators` and produces :class:`~repro.traces.Trace`
objects with the same sampling (1 Hz) and comparable movement
characteristics (Table 1).  The simulators also record the ground-truth link
occupied at every instant, which the evaluation uses to compute map-matching
accuracy and to train turn-probability tables.
"""

from repro.mobility.kinematics import DriverProfile, SpeedController
from repro.mobility.vehicle import VehicleSimulator, SimulatedJourney
from repro.mobility.pedestrian import PedestrianProfile, PedestrianSimulator
from repro.mobility.scenarios import (
    Scenario,
    ScenarioName,
    build_scenario,
    freeway_scenario,
    interurban_scenario,
    city_scenario,
    walking_scenario,
    all_scenarios,
)
from repro.mobility.generator import (
    REGIMES,
    AgentSpec,
    Degradation,
    GeneratorSpec,
    Topology,
    TrafficRegime,
    generate_scenario,
)

__all__ = [
    "DriverProfile",
    "SpeedController",
    "VehicleSimulator",
    "SimulatedJourney",
    "PedestrianProfile",
    "PedestrianSimulator",
    "Scenario",
    "ScenarioName",
    "build_scenario",
    "freeway_scenario",
    "interurban_scenario",
    "city_scenario",
    "walking_scenario",
    "all_scenarios",
    "REGIMES",
    "AgentSpec",
    "Degradation",
    "GeneratorSpec",
    "Topology",
    "TrafficRegime",
    "generate_scenario",
]
