"""The deterministic metrics registry: counters, gauges, histograms, latencies.

One instrument family serves every layer of the reproduction — the event
kernel, the columnar engine, the sharded service facade, the live serving
tier and the benchmarks — under two hard rules:

* **Merges are commutative and associative.**  A ``processes=N`` fleet run
  hands each worker its own :class:`MetricsRegistry`; the parent folds
  them back with :meth:`MetricsRegistry.merge`.  Counters add, histograms
  add bucket-wise, gauges combine by an explicit mode (``max``/``min``/
  ``sum``) — never "last write wins", which would depend on worker
  completion order.  Counter values are integers (exact under addition),
  so a merged registry is *bit-identical* regardless of merge order.
* **Determinism is declared, not assumed.**  Every instrument carries a
  ``deterministic`` flag meaning *invariant across worker partitioning and
  wall clock*: samples processed, timers fired, updates sent are the same
  numbers whether one process ran the fleet or four.  Agenda depth, wall
  time and handoff-event counts are not (each shard kernel fires its own
  handoff events), so they are flagged ``deterministic=False`` and excluded
  from :meth:`MetricsRegistry.snapshot(deterministic_only=True) <MetricsRegistry.snapshot>`
  — the view the bit-identity tests compare across worker counts.

Percentiles are **nearest-rank** (``pq = sorted[ceil(q/100 * n) - 1]``):
exact, monotone in *q*, always an actual sample, and — because the samples
are sorted before ranking — invariant to the order recorders were merged
in.  This is the one percentile implementation in the repository; the live
tier's :class:`repro.service.live.stats.LatencyRecorder` re-exports it and
``benchmarks/bench_bigmap.py`` routes its p50/p99 through it.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union


def nearest_rank(ordered: Sequence[float], q: float) -> float:
    """The nearest-rank *q*-th percentile of a **pre-sorted** sequence.

    ``0.0`` when empty; raises :class:`ValueError` unless ``0 < q <= 100``.
    For even-length samples this is ``statistics.median_low`` at ``q=50``
    (no interpolation policy — the result is always an actual sample).
    """
    n = len(ordered)
    if n == 0:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise ValueError("q must be in (0, 100]")
    rank = math.ceil(q / 100.0 * n)
    return ordered[rank - 1]


class Counter:
    """A monotonically increasing integer count; merges by addition."""

    __slots__ = ("value", "deterministic")

    kind = "counter"

    def __init__(self, deterministic: bool = True):
        self.value = 0
        self.deterministic = deterministic

    def inc(self, n: int = 1) -> None:
        self.value += n

    def fresh(self) -> "Counter":
        return Counter(deterministic=self.deterministic)

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "deterministic": self.deterministic,
            "value": self.value,
        }


#: The gauge combine modes — every one commutative and associative, so a
#: merged gauge never depends on worker completion order.
GAUGE_MODES = ("max", "min", "sum")


class Gauge:
    """A point-in-time value combined across registries by ``mode``."""

    __slots__ = ("value", "mode", "deterministic", "_set")

    kind = "gauge"

    def __init__(self, mode: str = "max", deterministic: bool = False):
        if mode not in GAUGE_MODES:
            raise ValueError(f"unknown gauge mode {mode!r}; expected one of {GAUGE_MODES}")
        self.value = 0.0
        self.mode = mode
        self.deterministic = deterministic
        self._set = False

    def set(self, value: float) -> None:
        value = float(value)
        if not self._set:
            self.value = value
            self._set = True
        elif self.mode == "max":
            self.value = max(self.value, value)
        elif self.mode == "min":
            self.value = min(self.value, value)
        else:
            self.value += value

    def fresh(self) -> "Gauge":
        return Gauge(mode=self.mode, deterministic=self.deterministic)

    def merge(self, other: "Gauge") -> None:
        if self.mode != other.mode:
            raise ValueError(f"gauge mode mismatch: {self.mode!r} != {other.mode!r}")
        if other._set:
            self.set(other.value)

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "deterministic": self.deterministic,
            "mode": self.mode,
            "value": self.value,
        }


class Histogram:
    """A fixed-bucket histogram; merges by element-wise bucket addition.

    ``bounds`` are the finite, strictly ascending *inclusive upper edges*;
    an implicit overflow bucket (``+inf``) catches the rest.  Two
    histograms merge only when their bounds match exactly.
    """

    __slots__ = ("bounds", "counts", "count", "total", "minimum", "maximum", "deterministic")

    kind = "histogram"

    def __init__(self, bounds: Sequence[float], deterministic: bool = False):
        edges = tuple(float(b) for b in bounds)
        if not edges or any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError("histogram bounds must be non-empty and strictly ascending")
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.deterministic = deterministic

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def fresh(self) -> "Histogram":
        return Histogram(self.bounds, deterministic=self.deterministic)

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        for bound, value in (("minimum", other.minimum), ("maximum", other.maximum)):
            if value is not None:
                mine = getattr(self, bound)
                combine = min if bound == "minimum" else max
                setattr(self, bound, value if mine is None else combine(mine, value))

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "deterministic": self.deterministic,
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": [
                [bound, count]
                for bound, count in zip(list(self.bounds) + ["+inf"], self.counts)
            ],
        }


class LatencyRecorder:
    """Collects wall-clock request latencies (seconds) and summarises them.

    This is the repository's one latency/percentile implementation (see the
    module docstring); the live tier re-exports it unchanged.  Percentiles
    are nearest-rank over the sorted samples, so the summary is invariant
    to the order recorders were merged in.
    """

    __slots__ = ("_samples", "deterministic")

    kind = "latency"

    def __init__(self, samples: Sequence[float] = (), deterministic: bool = False):
        self._samples: List[float] = [float(s) for s in samples]
        self.deterministic = deterministic

    def record(self, seconds: float) -> None:
        """Add one request's wall-clock duration."""
        self._samples.append(float(seconds))

    def fresh(self) -> "LatencyRecorder":
        return LatencyRecorder(deterministic=self.deterministic)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        self._samples.extend(other._samples)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded durations."""
        return sum(self._samples)

    def mean(self) -> float:
        """Arithmetic mean latency in seconds (``0.0`` when empty)."""
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile in seconds (``0.0`` when empty)."""
        if not self._samples:
            return 0.0
        if not 0.0 < q <= 100.0:
            raise ValueError("q must be in (0, 100]")
        return nearest_rank(sorted(self._samples), q)

    def summary(self) -> Dict[str, float]:
        """The reported metrics, in milliseconds (rounded to 0.1 us)."""

        def ms(seconds: float) -> float:
            return round(seconds * 1e3, 4)

        return {
            "count": len(self._samples),
            "avg_ms": ms(self.mean()),
            "p50_ms": ms(self.percentile(50.0)),
            "p95_ms": ms(self.percentile(95.0)),
            "p99_ms": ms(self.percentile(99.0)),
            "max_ms": ms(max(self._samples)) if self._samples else 0.0,
        }

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "deterministic": self.deterministic,
            **self.summary(),
        }


Instrument = Union[Counter, Gauge, Histogram, LatencyRecorder]

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


class MetricsRegistry:
    """A named collection of instruments with a commutative ``merge``.

    ``counter``/``gauge``/``histogram``/``latency`` are get-or-create (the
    same name always returns the same instrument; a kind clash raises), so
    instrumented code never holds registry bookkeeping — it just asks for
    the instrument by name on the spot.  Registries pickle cleanly, which
    is what lets fleet workers ship theirs back to the parent process.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, Instrument] = {}

    # ------------------------------------------------------------------ #
    # instrument access
    # ------------------------------------------------------------------ #
    def _get_or_create(self, name: str, factory, kind: str):
        instrument = self._metrics.get(name)
        if instrument is None:
            instrument = factory()
            self._metrics[name] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {instrument.kind}, not a {kind}"
            )
        return instrument

    def counter(self, name: str, deterministic: bool = True) -> Counter:
        return self._get_or_create(name, lambda: Counter(deterministic), Counter.kind)

    def gauge(self, name: str, mode: str = "max", deterministic: bool = False) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(mode, deterministic), Gauge.kind)

    def histogram(
        self, name: str, bounds: Sequence[float], deterministic: bool = False
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(bounds, deterministic), Histogram.kind
        )

    def latency(self, name: str) -> LatencyRecorder:
        return self._get_or_create(name, LatencyRecorder, LatencyRecorder.kind)

    def get(self, name: str) -> Optional[Instrument]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Tuple[str, Instrument]]:
        return iter(sorted(self._metrics.items()))

    # ------------------------------------------------------------------ #
    # merging and views
    # ------------------------------------------------------------------ #
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold *other* into this registry (commutative and associative).

        Instruments are matched by name; an absent instrument is created
        empty with the incoming one's configuration, so merging never
        mutates (or aliases) *other*.  Returns ``self`` for chaining.
        """
        for name in sorted(other._metrics):
            incoming = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                mine = incoming.fresh()
                self._metrics[name] = mine
            elif mine.kind != incoming.kind:
                raise ValueError(
                    f"metric {name!r} is a {mine.kind} here but a "
                    f"{incoming.kind} in the merged registry"
                )
            mine.merge(incoming)
        return self

    def snapshot(self, deterministic_only: bool = False) -> Dict[str, Dict[str, object]]:
        """A plain-data view, sorted by name (JSON-ready).

        ``deterministic_only=True`` keeps only instruments whose values are
        invariant across worker partitioning and wall clock — the view that
        must be bit-identical between ``processes=1`` and ``processes=N``.
        """
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._metrics.items())
            if not deterministic_only or instrument.deterministic
        }

    def render(self) -> str:
        """A fixed-width text table of every instrument (CLI reporting)."""
        lines = [f"{'metric':<44} {'kind':<10} {'det':<4} value"]
        for name, instrument in sorted(self._metrics.items()):
            snap = instrument.snapshot()
            det = "yes" if instrument.deterministic else "no"
            if instrument.kind == "counter":
                value = str(snap["value"])
            elif instrument.kind == "gauge":
                value = f"{snap['value']:g} ({snap['mode']})"
            elif instrument.kind == "histogram":
                value = f"n={snap['count']} min={snap['min']} max={snap['max']}"
            else:
                value = (
                    f"n={snap['count']} p50={snap['p50_ms']}ms "
                    f"p99={snap['p99_ms']}ms max={snap['max_ms']}ms"
                )
            lines.append(f"{name:<44} {instrument.kind:<10} {det:<4} {value}")
        return "\n".join(lines)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition (the live ``metrics`` wire op)."""
        out: List[str] = []
        for name, instrument in sorted(self._metrics.items()):
            metric = _PROM_NAME.sub("_", f"{prefix}_{name}" if prefix else name)
            if instrument.kind == "counter":
                out.append(f"# TYPE {metric} counter")
                out.append(f"{metric} {instrument.value}")
            elif instrument.kind == "gauge":
                out.append(f"# TYPE {metric} gauge")
                out.append(f"{metric} {instrument.value:g}")
            elif instrument.kind == "histogram":
                out.append(f"# TYPE {metric} histogram")
                cumulative = 0
                for bound, count in zip(instrument.bounds, instrument.counts):
                    cumulative += count
                    out.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
                out.append(f'{metric}_bucket{{le="+Inf"}} {instrument.count}')
                out.append(f"{metric}_sum {instrument.total:g}")
                out.append(f"{metric}_count {instrument.count}")
            else:
                out.append(f"# TYPE {metric} summary")
                for q in (50.0, 95.0, 99.0):
                    out.append(
                        f'{metric}{{quantile="{q / 100.0:g}"}} '
                        f"{instrument.percentile(q) if len(instrument) else 0.0:g}"
                    )
                out.append(f"{metric}_sum {instrument.total_seconds:g}")
                out.append(f"{metric}_count {len(instrument)}")
        return "\n".join(out) + ("\n" if out else "")


def publish_service_stats(registry: MetricsRegistry, stats: Mapping[str, object]) -> None:
    """Publish a facade ``service_stats()`` dict into *registry*.

    Called once per fleet run **at the top level only**: in a multi-process
    run the per-shard stats have already been folded by the fleet's proven
    merge (``batches_ingested`` is a union over ingest instants, not a
    sum), so publishing merged stats here yields the same numbers as the
    single-process run — which is exactly what makes these counters safe to
    flag deterministic.  The per-shard rows are the hot-shard-skew study's
    data: ``service.shard.<n>.updates`` etc. attribute work to shards.
    """
    for key in (
        "updates_ingested",
        "batches_ingested",
        "handoffs",
        "prepare_passes",
        "range_queries",
        "nearest_queries",
        "geofence_queries",
        "queries",
    ):
        value = stats.get(key)
        if value is not None:
            registry.counter(f"service.{key}").inc(int(value))
    for key in ("objects", "shards"):
        value = stats.get(key)
        if value is not None:
            registry.gauge(f"service.{key}", mode="max", deterministic=True).set(value)
    imbalance = stats.get("load_imbalance")
    if imbalance is not None:
        registry.gauge("service.load_imbalance", mode="max", deterministic=True).set(
            imbalance
        )
        # Published under the rebalancing vocabulary too: the skew gauge is
        # the number RebalancePolicy thresholds on (max/mean object count
        # across shards), so obs-report prints it directly.
        registry.gauge("service.shard.skew", mode="max", deterministic=True).set(
            imbalance
        )
    seconds = stats.get("query_seconds")
    if seconds is not None:
        registry.gauge("service.query_seconds", mode="sum").set(float(seconds))
    for row in stats.get("per_shard", ()):  # type: ignore[union-attr]
        shard = row.get("shard")
        if shard is None:
            continue
        base = f"service.shard.{shard}"
        for key in (
            "updates",
            "handoffs_in",
            "handoffs_out",
            "engine_queries",
            "engine_syncs",
            "engine_moves",
        ):
            value = row.get(key)
            if value is not None:
                registry.counter(f"{base}.{key}").inc(int(value))
        objects = row.get("objects")
        if objects is not None:
            registry.gauge(f"{base}.objects", mode="max", deterministic=True).set(objects)
