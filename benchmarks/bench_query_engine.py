"""Query-engine throughput: sharded index-backed queries vs linear scans.

The service-tier refactor replaced the seed's O(fleet) per-query linear
scans with a sharded :class:`~repro.service.facade.LocationService` whose
per-shard :class:`~repro.service.query_engine.QueryEngine` maintains an
incremental spatial index over predicted positions.  This benchmark tracks
a 1000-object fleet on both backends, replays the same mixed query workload
(range / k-nearest / geofence, several query waves per simulated timestamp)
against each, and

* asserts every answer is *identical* between the two paths,
* requires the sharded path to deliver at least 5x the query throughput of
  the linear-scan baseline, and
* records everything (including per-shard load counters) in
  ``BENCH_query_engine.json`` at the repository root.

The fleet size, shard count and query volume can be tuned via
``REPRO_BENCH_QE_OBJECTS`` / ``REPRO_BENCH_QE_SHARDS`` /
``REPRO_BENCH_QE_QUERIES`` for quick local runs.
``REPRO_BENCH_QE_MIN_SPEEDUP`` lowers the *asserted* floor (CI smoke on
noisy shared runners gates on "clearly beats the full scan" rather than
the full 5x target, which is still recorded in the artifact).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason
from repro.protocols.prediction import LinearPrediction
from repro.service.facade import LocationService
from repro.service.queries import geofence_query, nearest_object_query, range_query
from repro.service.server import LocationServer
from repro.sim.workload import QueryWorkload, WorkloadExecutor

from conftest import run_once

_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_query_engine.json")

#: Spatial extent of the synthetic fleet (a ~20 km urban region).
_EXTENT_M = 20_000.0
#: The throughput the sharded path must deliver over the linear baseline.
_REQUIRED_SPEEDUP = 5.0


def _build_fleet(n_objects: int, seed: int = 0):
    """One update per object: positions and velocities over the region."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, _EXTENT_M, size=(n_objects, 2))
    velocities = rng.uniform(-20.0, 20.0, size=(n_objects, 2))
    messages = []
    for i in range(n_objects):
        state = ObjectState(
            time=0.0,
            position=positions[i],
            velocity=velocities[i],
            speed=float(np.hypot(*velocities[i])),
        )
        messages.append(
            (
                f"obj-{i:04d}",
                UpdateMessage(sequence=0, state=state, reason=UpdateReason.THRESHOLD),
            )
        )
    return messages


def _replay(backend, workload: QueryWorkload, times, queries_per_wave: int):
    """Replay the workload, several query waves per timestamp; return executor."""
    executor = WorkloadExecutor(
        workload,
        backend,
        BoundingBox(0.0, 0.0, _EXTENT_M, _EXTENT_M),
        record_answers=True,
    )
    for t in times:
        for _ in range(queries_per_wave):
            executor.on_tick(t)
    return executor


def compare_query_paths(
    n_objects: int = 1000, shards: int = 4, n_queries: int = 600, seed: int = 0
):
    """Time linear-scan vs sharded-index query answering; return the record."""
    messages = _build_fleet(n_objects, seed=seed)

    single = LocationServer()
    service = LocationService(n_shards=shards, region_size=_EXTENT_M / 8.0)
    for backend in (single, service):
        for object_id, _ in messages:
            backend.register_object(
                object_id, prediction=LinearPrediction(), accuracy=100.0
            )
    for object_id, message in messages:
        single.receive_update(object_id, message, 0.0)
    service.ingest_batch(messages, 0.0)

    # Queries arrive in waves: many application queries per simulated
    # timestamp, a handful of distinct timestamps (each forces a full
    # incremental re-sync of every shard's index on the service path).
    times = [0.0, 15.0, 30.0, 45.0, 60.0]
    queries_per_wave = max(1, n_queries // (len(times) * 1))
    workload = QueryWorkload(
        queries_per_tick=1.0,
        mix={"range": 1.0, "nearest": 1.0, "geofence": 1.0},
        k=5,
        range_extent_m=1500.0,
        geofence_radius_m=800.0,
        seed=seed,
    )

    t0 = time.perf_counter()
    linear = _replay(single, workload, times, queries_per_wave)
    linear_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = _replay(service, workload, times, queries_per_wave)
    sharded_seconds = time.perf_counter() - t0

    identical = linear.answers == sharded.answers
    speedup = linear_seconds / sharded_seconds if sharded_seconds > 0 else None
    stats = service.service_stats()

    return {
        "benchmark": "query_engine_vs_linear_scan",
        "objects": n_objects,
        "shards": shards,
        "queries": linear.report.queries,
        "query_waves": len(times) * queries_per_wave,
        "distinct_times": len(times),
        "mix": dict(workload.mix),
        "required_speedup": _REQUIRED_SPEEDUP,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "linear_scan_seconds": round(linear_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "speedup": round(speedup, 3) if speedup else None,
        "linear_queries_per_second": round(linear.report.queries_per_second, 1),
        "sharded_queries_per_second": round(sharded.report.queries_per_second, 1),
        "answers_identical": identical,
        "hits": linear.report.hits,
        "handoffs": stats["handoffs"],
        "load_imbalance": round(stats["load_imbalance"], 3),
        "per_shard": stats["per_shard"],
    }


def _print_record(record):
    print(
        json.dumps(
            {k: v for k, v in record.items() if k not in ("per_shard", "machine")},
            indent=2,
        )
    )


def _write_record(record):
    with open(_RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.normpath(_RESULT_PATH)}")


def _env_int(name, default):
    return int(os.environ.get(name, default))


def _min_speedup() -> float:
    """The asserted speedup floor (default: the full 5x target)."""
    return float(os.environ.get("REPRO_BENCH_QE_MIN_SPEEDUP", _REQUIRED_SPEEDUP))


def test_query_engine_speedup(benchmark):
    record = run_once(
        benchmark,
        compare_query_paths,
        n_objects=_env_int("REPRO_BENCH_QE_OBJECTS", 1000),
        shards=_env_int("REPRO_BENCH_QE_SHARDS", 4),
        n_queries=_env_int("REPRO_BENCH_QE_QUERIES", 600),
    )
    print()
    _print_record(record)
    _write_record(record)
    assert record["answers_identical"], "sharded answers diverge from the linear scans"
    floor = _min_speedup()
    assert record["speedup"] >= floor, (
        f"speedup {record['speedup']}x is below the {floor}x floor"
    )


def test_linear_reference_agreement_small():
    """Tiny cross-check runnable without the benchmark harness."""
    messages = _build_fleet(50, seed=3)
    single = LocationServer()
    service = LocationService(n_shards=3, region_size=4000.0)
    for backend in (single, service):
        for object_id, _ in messages:
            backend.register_object(object_id, prediction=LinearPrediction())
    for object_id, message in messages:
        single.receive_update(object_id, message, 0.0)
    service.ingest_batch(messages, 0.0)
    box = BoundingBox(2000.0, 2000.0, 9000.0, 8000.0)
    for t in (0.0, 20.0):
        assert service.range_query(box, t) == range_query(single, box, t)
        assert service.nearest_objects((5000.0, 5000.0), t, k=5) == nearest_object_query(
            single, (5000.0, 5000.0), t, k=5
        )
        assert service.geofence_query((5000.0, 5000.0), 2500.0, t) == geofence_query(
            single, (5000.0, 5000.0), 2500.0, t
        )


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke entry point
    record = compare_query_paths(
        n_objects=_env_int("REPRO_BENCH_QE_OBJECTS", 1000),
        shards=_env_int("REPRO_BENCH_QE_SHARDS", 4),
        n_queries=_env_int("REPRO_BENCH_QE_QUERIES", 600),
    )
    _print_record(record)
    _write_record(record)
    assert record["answers_identical"], "sharded answers diverge from the linear scans"
    floor = _min_speedup()
    assert record["speedup"] >= floor, (
        f"speedup {record['speedup']}x is below the {floor}x floor"
    )
