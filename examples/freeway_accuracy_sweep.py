#!/usr/bin/env python
"""Freeway accuracy sweep — a miniature of the paper's Figure 7.

Sweeps the accuracy requested at the location server and plots (as ASCII)
the update messages per hour of the three protocols, both in absolute terms
and relative to the non-dead-reckoning baseline.

Run with::

    python examples/freeway_accuracy_sweep.py [scale]

where the optional *scale* (default 0.25) is the fraction of the paper's
163 km freeway trace to simulate.
"""

import sys

from repro.experiments.figures import figure_for_scenario
from repro.experiments.report import format_series_chart, format_table
from repro.mobility.scenarios import freeway_scenario


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    scenario = freeway_scenario(scale=scale)
    print(f"Simulating {scenario.summary()['length_km']:.0f} km of freeway driving...")

    figure = figure_for_scenario(
        scenario, accuracies=[20.0, 50.0, 100.0, 200.0, 300.0, 500.0]
    )

    print()
    print(format_table(figure.as_rows(), title="Updates per hour vs requested accuracy"))

    print()
    print("Absolute update rates (cf. Fig. 7, left):")
    print(
        format_series_chart(
            figure.baseline.accuracies,
            {s.label: s.updates_per_hour for s in figure.series.values()},
            y_label="updates/h",
        )
    )

    print()
    print("Relative to distance-based reporting (cf. Fig. 7, right):")
    relative = figure.relative_series()
    print(
        format_series_chart(
            figure.baseline.accuracies,
            {
                figure.series[pid].label: values
                for pid, values in relative.items()
                if pid != "distance"
            },
            y_label="% of baseline",
        )
    )

    print()
    print(
        "Maximum reduction vs distance-based reporting: "
        f"linear {figure.reduction_vs_baseline('linear'):.0f}%, "
        f"map-based {figure.reduction_vs_baseline('map'):.0f}% "
        f"(paper: up to 83% and ~91%)."
    )


if __name__ == "__main__":
    main()
