"""Non-dead-reckoning reporting protocols.

These are the baselines of the paper's earlier work ([6], also [1] for PCS
location management): the server performs no prediction at all, so the
source must report whenever the *reported* (static) position could be off by
more than the requested accuracy.

* :class:`DistanceBasedReporting` — the baseline used in the paper's
  evaluation: update when the actual position deviates from the last
  reported one by more than the threshold.
* :class:`TimeBasedReporting` — update every fixed interval.
* :class:`MovementBasedReporting` — update after a fixed amount of movement
  (travelled path length), regardless of where it led.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geo.vec import distance
from repro.protocols.base import UpdateProtocol, UpdateReason
from repro.protocols.prediction import PredictionFunction, StaticPrediction


class DistanceBasedReporting(UpdateProtocol):
    """Send an update when the object moved more than ``us`` from the last report.

    "The distance-based protocol sends an update whenever the actual
    position deviates from the last reported position by more than a given
    threshold." (paper Sec. 4)
    """

    name = "distance-based reporting"

    def __init__(
        self,
        accuracy: float,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ):
        super().__init__(accuracy, sensor_uncertainty, estimation_window)
        self._prediction = StaticPrediction()

    def prediction_function(self) -> PredictionFunction:
        return self._prediction

    def _should_update(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateReason]:
        if self._threshold_exceeded(time, position):
            return UpdateReason.THRESHOLD
        return None


class TimeBasedReporting(UpdateProtocol):
    """Send an update every ``interval`` seconds.

    The accuracy delivered by this protocol depends entirely on the object
    speed, which is why the paper's earlier work found it inferior to
    distance-based reporting for accuracy-bounded tracking; it is included
    as a baseline for the ablation benchmarks.
    """

    name = "time-based reporting"

    def __init__(
        self,
        accuracy: float,
        interval: float,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ):
        super().__init__(accuracy, sensor_uncertainty, estimation_window)
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = float(interval)
        self._prediction = StaticPrediction()
        # The most recent sighting, replayed by timer-fired reports (only
        # this protocol pays the bookkeeping; see _pre_decision_hook).
        self._last_seen: Optional[tuple] = None

    @classmethod
    def for_speed(
        cls,
        accuracy: float,
        expected_speed: float,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ) -> "TimeBasedReporting":
        """Choose the interval so that accuracy holds at the expected speed.

        ``interval = us / v``: an object moving at *expected_speed* covers at
        most ``us`` metres between two updates.
        """
        if expected_speed <= 0:
            raise ValueError("expected_speed must be positive")
        return cls(
            accuracy,
            interval=accuracy / expected_speed,
            sensor_uncertainty=sensor_uncertainty,
            estimation_window=estimation_window,
        )

    def prediction_function(self) -> PredictionFunction:
        return self._prediction

    def clone_for(self, accuracy=None) -> "TimeBasedReporting":
        """Clone with the interval rescaled to the new accuracy.

        The interval encodes ``us / v`` (see :meth:`for_speed`), so a clone
        requested for a different accuracy keeps the implied object speed.
        """
        clone = super().clone_for(accuracy)
        if accuracy is not None:
            clone.interval = self.interval * (clone.accuracy / self.accuracy)
        return clone

    def _should_update(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateReason]:
        assert self.last_reported is not None
        if time - self.last_reported.time >= self.interval:
            return UpdateReason.TIMER
        return None

    def _pre_decision_hook(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> None:
        self._last_seen = (time, position, velocity, speed)

    def reset(self) -> None:
        super().reset()
        self._last_seen = None

    # ------------------------------------------------------------------ #
    # event-kernel timer contract
    # ------------------------------------------------------------------ #
    def next_deadline(self) -> Optional[float]:
        """The exact instant of the next periodic report.

        Under the event kernel the report fires at exactly
        ``t0 + k * interval`` (``t0`` being the initial report), carrying
        the most recent sighting's state; under the tick loop the protocol
        is polled and reports at the first sighting past the deadline.
        """
        if self.last_reported is None:
            return None
        return self.last_reported.time + self.interval

    def on_timer(self, time: float):
        """Emit the periodic report at the exact deadline.

        Stale fires (a sighting at the same instant already reported, so
        the deadline moved) are ignored.  The staleness check compares
        against :meth:`next_deadline` itself — the very float the kernel
        scheduled — never against a re-derived ``time - last`` difference,
        which rounds differently for non-representable intervals (e.g. any
        :meth:`for_speed` ratio) and would reject the legitimate fire
        forever.  The transmitted state holds the last observed position —
        the server performs no prediction for this protocol, so holding is
        exactly what reporting does.
        """
        deadline = self.next_deadline()
        if deadline is None or self._last_seen is None or time < deadline:
            return None
        _, position, velocity, speed = self._last_seen
        return self._emit_update(time, position, velocity, speed, UpdateReason.TIMER)


class MovementBasedReporting(UpdateProtocol):
    """Send an update after the object travelled ``us`` metres of path.

    Tracks the accumulated travelled distance since the last update (rather
    than the straight-line displacement the distance-based protocol uses),
    the movement-based strategy known from PCS location management [1].
    """

    name = "movement-based reporting"

    def __init__(
        self,
        accuracy: float,
        sensor_uncertainty: float = 0.0,
        estimation_window: int = 4,
    ):
        super().__init__(accuracy, sensor_uncertainty, estimation_window)
        self._prediction = StaticPrediction()
        self._travelled_since_update = 0.0
        self._last_position: Optional[np.ndarray] = None

    def prediction_function(self) -> PredictionFunction:
        return self._prediction

    def _pre_decision_hook(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> None:
        if self._last_position is not None:
            self._travelled_since_update += distance(position, self._last_position)
        self._last_position = position.copy()

    def _should_update(
        self, time: float, position: np.ndarray, velocity: np.ndarray, speed: float
    ) -> Optional[UpdateReason]:
        if self._travelled_since_update + self.sensor_uncertainty > self.accuracy:
            return UpdateReason.THRESHOLD
        return None

    def _post_update_hook(self, message) -> None:
        self._travelled_since_update = 0.0

    def reset(self) -> None:
        super().reset()
        self._travelled_since_update = 0.0
        self._last_position = None
