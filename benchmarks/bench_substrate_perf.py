"""Performance micro-benchmarks of the substrates.

Not part of the paper's evaluation, but useful for keeping the simulation
fast (the figure benchmarks replay hours of 1 Hz data): spatial-index
queries, polyline projection, map matching and the map-based prediction are
the hot paths of the protocol loop.
"""

import random

import numpy as np
import pytest

from repro.geo.polyline import Polyline
from repro.mapmatching.matcher import IncrementalMapMatcher, MatcherConfig
from repro.protocols.base import ObjectState
from repro.protocols.prediction import MapPrediction
from repro.roadmap.generators import city_grid_map, freeway_map


@pytest.fixture(scope="module")
def city():
    return city_grid_map(rows=16, cols=16, seed=0)


@pytest.fixture(scope="module")
def freeway():
    return freeway_map(length_km=60.0, seed=0)


def test_perf_nearest_link_queries(benchmark, city):
    rng = random.Random(0)
    bounds = city.bounds()
    queries = [
        (rng.uniform(bounds.min_x, bounds.max_x), rng.uniform(bounds.min_y, bounds.max_y))
        for _ in range(500)
    ]

    def run():
        hits = 0
        for q in queries:
            if city.nearest_link(q, max_distance=200.0) is not None:
                hits += 1
        return hits

    hits = benchmark(run)
    assert hits > 0


def test_perf_polyline_projection(benchmark):
    rng = np.random.default_rng(0)
    points = np.cumsum(rng.normal(0.0, 50.0, size=(200, 2)), axis=0)
    polyline = Polyline(points)
    queries = rng.normal(0.0, 500.0, size=(500, 2))

    def run():
        total = 0.0
        for q in queries:
            total += polyline.project(q)[2]
        return total

    total = benchmark(run)
    assert total > 0


def test_perf_incremental_matching(benchmark, freeway):
    # Positions along the motorway with a small lateral offset.
    link = max(freeway.links.values(), key=lambda l: l.length)
    offsets = np.linspace(0.0, link.length, 1000)
    positions = [link.point_at(o) + np.array([0.0, 3.0]) for o in offsets]
    heading = link.direction_at(0.0)

    def run():
        matcher = IncrementalMapMatcher(freeway, MatcherConfig(tolerance=30.0))
        matched = 0
        for p in positions:
            if matcher.update(p, heading=heading).is_matched:
                matched += 1
        return matched

    matched = benchmark(run)
    assert matched >= 990


def test_perf_map_prediction(benchmark, freeway):
    link = next(iter(freeway.links.values()))
    state = ObjectState(
        time=0.0,
        position=link.point_at(0.0),
        velocity=link.direction_at(0.0) * 30.0,
        speed=30.0,
        link_id=link.id,
        link_offset=0.0,
    )
    prediction = MapPrediction(freeway)
    horizons = np.linspace(1.0, 600.0, 500)

    def run():
        total = 0.0
        for horizon in horizons:
            total += float(prediction.predict(state, float(horizon))[0])
        return total

    benchmark(run)
