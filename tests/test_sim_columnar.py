"""The columnar mega-fleet engine: bitwise equivalence and eligibility."""

import numpy as np
import pytest

from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.reporting import DistanceBasedReporting, TimeBasedReporting
from repro.service.channel import MessageChannel
from repro.service.server import LocationServer
from repro.sim.columnar import (
    LINEAR,
    STATIC,
    ColumnarFleetEngine,
    ColumnarStore,
    estimate_traces,
    run_fleet_columnar,
)
from repro.sim.fleet import FleetLane, FleetSimulation
from repro.sim.workload import QueryWorkload
from repro.traces.estimation import estimate_trace
from repro.traces.trace import Trace


# --------------------------------------------------------------------------- #
# batched estimator
# --------------------------------------------------------------------------- #
def _random_lanes(n_lanes, n_samples, seed=0, jitter=True):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.5, 2.0, size=n_samples)) if jitter else (
        np.arange(n_samples, dtype=float)
    )
    positions = np.cumsum(rng.normal(0.0, 5.0, size=(n_lanes, n_samples, 2)), axis=1)
    return times, positions


class TestEstimateTraces:
    @pytest.mark.parametrize("window", [2, 3, 4, 6])
    @pytest.mark.parametrize("n_samples", [1, 2, 3, 5, 9, 40])
    def test_bitwise_equal_to_per_lane_estimator(self, window, n_samples):
        times, positions = _random_lanes(7, n_samples, seed=window * 100 + n_samples)
        velocities, speeds = estimate_traces(times, positions, window)
        for k in range(positions.shape[0]):
            v_ref, s_ref = estimate_trace(times, positions[k], window=window)
            assert np.array_equal(velocities[k], v_ref), f"lane {k} velocities"
            assert np.array_equal(speeds[k], s_ref), f"lane {k} speeds"

    def test_chunked_lanes_equal_unchunked(self, monkeypatch):
        import repro.sim.columnar as columnar

        times, positions = _random_lanes(9, 30, seed=5)
        full = estimate_traces(times, positions, 4)
        monkeypatch.setattr(columnar, "_ESTIMATE_CHUNK", 2)
        chunked = estimate_traces(times, positions, 4)
        assert np.array_equal(full[0], chunked[0])
        assert np.array_equal(full[1], chunked[1])

    def test_window_below_two_rejected(self):
        times, positions = _random_lanes(1, 5)
        with pytest.raises(ValueError):
            estimate_traces(times, positions, 1)


# --------------------------------------------------------------------------- #
# engine vs the scalar fleet loop
# --------------------------------------------------------------------------- #
def _scenario_lanes(scenario, mode, accuracies=(50.0, 100.0, 200.0), up=0.0):
    protocol_cls = DistanceBasedReporting if mode == STATIC else LinearPredictionProtocol
    return [
        FleetLane(
            object_id=f"{mode}/{int(accuracy)}/{k}",
            protocol=protocol_cls(accuracy, sensor_uncertainty=up),
            sensor_trace=scenario.sensor_trace,
            truth_trace=scenario.true_trace,
        )
        for k, accuracy in enumerate(accuracies)
    ]


def _assert_fleet_results_identical(a, b):
    rows_a = {oid: r.as_dict() for oid, r in a.results.items()}
    rows_b = {oid: r.as_dict() for oid, r in b.results.items()}
    assert list(rows_a) == list(rows_b)
    assert rows_a == rows_b
    for oid in rows_a:
        assert np.array_equal(
            a.results[oid].metrics.errors, b.results[oid].metrics.errors
        ), f"error samples diverged for {oid}"


_SCENARIO_FIXTURES = [
    "tiny_freeway_scenario",
    "tiny_city_scenario",
    "tiny_interurban_scenario",
    "tiny_walking_scenario",
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("fixture", _SCENARIO_FIXTURES)
    @pytest.mark.parametrize("mode", [STATIC, LINEAR])
    @pytest.mark.parametrize("kernel", ["tick", "event"])
    def test_bitwise_identical_to_fleet(self, request, fixture, mode, kernel):
        scenario = request.getfixturevalue(fixture)
        scalar = FleetSimulation(_scenario_lanes(scenario, mode), kernel=kernel).run()
        columnar = run_fleet_columnar(_scenario_lanes(scenario, mode))
        _assert_fleet_results_identical(scalar, columnar)

    def test_sensor_uncertainty_column(self, tiny_city_scenario):
        lanes = _scenario_lanes(tiny_city_scenario, LINEAR, up=15.0)
        scalar = FleetSimulation(lanes, kernel="event").run()
        columnar = run_fleet_columnar(_scenario_lanes(tiny_city_scenario, LINEAR, up=15.0))
        _assert_fleet_results_identical(scalar, columnar)

    @pytest.mark.parametrize("count_initial", [True, False])
    def test_count_initial_update(self, tiny_freeway_scenario, count_initial):
        scalar = FleetSimulation(
            _scenario_lanes(tiny_freeway_scenario, STATIC),
            count_initial_update=count_initial,
        ).run()
        columnar = run_fleet_columnar(
            _scenario_lanes(tiny_freeway_scenario, STATIC),
            count_initial_update=count_initial,
        )
        _assert_fleet_results_identical(scalar, columnar)

    def test_channel_stats_match_shared_channel(self, tiny_city_scenario):
        fleet = FleetSimulation(_scenario_lanes(tiny_city_scenario, LINEAR))
        fleet.run()
        engine = ColumnarFleetEngine.from_lanes(
            _scenario_lanes(tiny_city_scenario, LINEAR)
        )
        engine.run()
        assert engine.channel_stats() == fleet.shared_channel.stats

    def test_raw_array_constructor_equals_lane_path(self):
        times, positions = _random_lanes(5, 60, seed=9, jitter=False)
        ids = [f"obj/{k}" for k in range(5)]
        lanes = [
            FleetLane(ids[k], LinearPredictionProtocol(50.0), Trace(times, positions[k]))
            for k in range(5)
        ]
        via_lanes = run_fleet_columnar(lanes)
        via_arrays = ColumnarFleetEngine(
            times, positions, mode=LINEAR, accuracy=50.0, object_ids=ids
        ).run()
        _assert_fleet_results_identical(via_lanes, via_arrays)


# --------------------------------------------------------------------------- #
# eligibility
# --------------------------------------------------------------------------- #
class TestEligibility:
    def _lanes(self, scenario):
        return _scenario_lanes(scenario, LINEAR)

    def test_eligible_fleet_returns_none(self, tiny_city_scenario):
        assert ColumnarFleetEngine.ineligibility(self._lanes(tiny_city_scenario)) is None

    def test_empty_fleet(self):
        assert "at least one lane" in ColumnarFleetEngine.ineligibility([])

    def test_server_rejected(self, tiny_city_scenario):
        reason = ColumnarFleetEngine.ineligibility(
            self._lanes(tiny_city_scenario), server=LocationServer()
        )
        assert "server" in reason

    def test_workload_rejected(self, tiny_city_scenario):
        reason = ColumnarFleetEngine.ineligibility(
            self._lanes(tiny_city_scenario),
            query_workload=QueryWorkload(seed=1),
        )
        assert "workload" in reason

    def test_unsupported_protocol(self, tiny_city_scenario):
        lanes = self._lanes(tiny_city_scenario)
        lanes[0] = FleetLane(
            "timer", TimeBasedReporting(50.0, interval=10.0), lanes[0].sensor_trace
        )
        assert "TimeBasedReporting" in ColumnarFleetEngine.ineligibility(lanes)

    def test_mixed_protocol_classes(self, tiny_city_scenario):
        lanes = self._lanes(tiny_city_scenario)
        lanes[-1] = FleetLane(
            "mixed", DistanceBasedReporting(50.0), lanes[-1].sensor_trace
        )
        assert "one protocol class" in ColumnarFleetEngine.ineligibility(lanes)

    def test_mixed_estimation_windows(self, tiny_city_scenario):
        lanes = self._lanes(tiny_city_scenario)
        lanes[-1] = FleetLane(
            "window",
            LinearPredictionProtocol(50.0, estimation_window=6),
            lanes[-1].sensor_trace,
        )
        assert "estimation window" in ColumnarFleetEngine.ineligibility(lanes)

    def test_lossy_or_latent_channels_rejected(self, tiny_city_scenario):
        lanes = self._lanes(tiny_city_scenario)
        lanes[0] = FleetLane(
            "lossy",
            LinearPredictionProtocol(50.0),
            lanes[0].sensor_trace,
            channel=MessageChannel(latency=5.0),
        )
        assert "zero-latency" in ColumnarFleetEngine.ineligibility(lanes)
        assert "zero-latency" in ColumnarFleetEngine.ineligibility(
            self._lanes(tiny_city_scenario),
            channel=MessageChannel(loss_probability=0.2, seed=1),
        )

    def test_mixed_sampling_grids(self, tiny_city_scenario):
        lanes = self._lanes(tiny_city_scenario)
        trace = lanes[0].sensor_trace
        shifted = Trace(trace.times + 0.5, trace.positions)
        lanes[0] = FleetLane("shifted", LinearPredictionProtocol(50.0), shifted)
        assert "one sampling grid" in ColumnarFleetEngine.ineligibility(lanes)

    def test_from_lanes_raises_with_reason(self, tiny_city_scenario):
        with pytest.raises(ValueError, match="not columnar-eligible"):
            ColumnarFleetEngine.from_lanes([])


# --------------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------------- #
class TestColumnarStore:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ColumnarStore(["a", "a"], accuracy=50.0, sensor_uncertainty=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ColumnarStore([], accuracy=50.0, sensor_uncertainty=0.0)

    def test_nonpositive_accuracy_rejected(self):
        with pytest.raises(ValueError, match="accuracy"):
            ColumnarStore(["a", "b"], accuracy=[50.0, 0.0], sensor_uncertainty=0.0)

    def test_negative_uncertainty_rejected(self):
        with pytest.raises(ValueError, match="sensor_uncertainty"):
            ColumnarStore(["a"], accuracy=50.0, sensor_uncertainty=-1.0)

    def test_scalar_broadcast(self):
        store = ColumnarStore(["a", "b", "c"], accuracy=75.0, sensor_uncertainty=2.0)
        assert np.array_equal(store.accuracy, [75.0, 75.0, 75.0])
        assert np.array_equal(store.sensor_uncertainty, [2.0, 2.0, 2.0])

    def test_build_index_covers_reported_objects(self):
        times, positions = _random_lanes(4, 20, seed=13, jitter=False)
        engine = ColumnarFleetEngine(times, positions, mode=STATIC, accuracy=50.0)
        empty = engine.store.build_index()
        assert len(empty) == 0
        engine.run()
        index = engine.store.build_index(cell_size=250.0)
        assert len(index) == 4
        from repro.geo.bbox import BoundingBox

        low = positions[:, -1, :].min(axis=0) - 300.0
        high = positions[:, -1, :].max(axis=0) + 300.0
        hits = index.query_bbox(BoundingBox(low[0], low[1], high[0], high[1]))
        found = {item.key for item in hits}
        # Every lane's cell intersects the box around the final positions.
        assert found >= set(engine.store.object_ids)

    def test_engine_validates_shapes(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            ColumnarFleetEngine(np.array([0.0, 0.0]), np.zeros((1, 2, 2)))
        with pytest.raises(ValueError, match="shape"):
            ColumnarFleetEngine(np.array([0.0, 1.0]), np.zeros((1, 3, 2)))
        with pytest.raises(ValueError, match="mode"):
            ColumnarFleetEngine(
                np.array([0.0, 1.0]), np.zeros((1, 2, 2)), mode="warp"
            )
        with pytest.raises(ValueError, match="object_ids"):
            ColumnarFleetEngine(
                np.array([0.0, 1.0]), np.zeros((2, 2, 2)), object_ids=["just-one"]
            )
