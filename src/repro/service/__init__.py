"""Location-service substrate.

The paper's system model (Fig. 1) has a *source* co-located with the mobile
object's positioning sensor and a *location server* that stores the reported
object state, applies the shared prediction function and answers position
queries from applications.  This package provides those two components plus
the message channel between them and the query API applications use
("find the nearest taxi cab", "address all users inside an area",
paper Sec. 1).

Beyond the paper's single server, the package also provides the sharded
serving tier the ROADMAP's fleet-scale north star needs:
:class:`LocationService` partitions tracked objects across N
:class:`LocationServer` shards by spatial region (pluggable
:class:`ShardingPolicy`), ingests updates in per-tick batches, hands
objects off across shard boundaries, and answers range / k-nearest /
geofence queries through one columnar :class:`QueryEngine` per shard
(vectorised NumPy kernels; :class:`ScalarQueryEngine` is the retained
bit-identical reference).  :class:`RebalancePolicy` re-homes hot routing
cells when the per-shard skew exceeds a threshold, keeping the tier
load-adaptive under live traffic.
"""

from repro.service.channel import ChannelStats, MessageChannel
from repro.service.server import LocationServer, TrackedObject
from repro.service.source import LocationSource
from repro.service.sharding import (
    GridHashPolicy,
    RebalancePolicy,
    RebalanceReport,
    ShardingPolicy,
    shard_skew,
)
from repro.service.query_engine import QueryEngine, ScalarQueryEngine
from repro.service.facade import LocationService, QueryCounters, ShardLoad
from repro.service.queries import (
    PositionQueryResult,
    geofence_query,
    position_query,
    range_query,
    nearest_object_query,
)

__all__ = [
    "MessageChannel",
    "ChannelStats",
    "LocationServer",
    "TrackedObject",
    "LocationSource",
    "LocationService",
    "QueryEngine",
    "ScalarQueryEngine",
    "QueryCounters",
    "ShardLoad",
    "ShardingPolicy",
    "GridHashPolicy",
    "RebalancePolicy",
    "RebalanceReport",
    "shard_skew",
    "PositionQueryResult",
    "position_query",
    "range_query",
    "nearest_object_query",
    "geofence_query",
]
