"""The live serving tier, plus the channel-delivery correctness fixes.

Covers three areas that ship together:

* **Channel delivery correctness** — tied ``(deliver_at, object_id)``
  entries must not crash the sort (``UpdateMessage`` has no ordering), and
  a channel must be safely reusable across runs and kernels (``reset()``
  unbinds a stale event-kernel scheduler; a failed bind leaves every
  channel usable).
* **Facade margin queries on all-infinite-accuracy fleets** — pinned
  bit-identical to the linear reference scans.
* **The live server itself** — wire protocol round trips, latency
  accounting, backpressure on the bounded ingest queue, clean shutdown
  with in-flight work, and the headline guarantee: answers served over
  TCP are bit-identical to direct facade calls on the same replayed
  scenario stream, under both lockstep and concurrent clients.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.experiments.library import FleetMix, fleet_lanes
from repro.geo.bbox import BoundingBox
from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason
from repro.service.channel import MessageChannel, delivery_order
from repro.service.facade import LocationService
from repro.service.live.client import LiveClient, LiveRequestError
from repro.service.live.protocol import (
    FrameError,
    decode_answer,
    decode_message,
    encode_answer,
    encode_message,
    read_frame,
)
from repro.service.live.server import LiveLocationServer
from repro.service.live.stats import LatencyRecorder
from repro.service.loadgen import (
    build_replay_plan,
    mismatched_answers,
    run_load_test,
    service_for_plan,
)
from repro.service.queries import range_query as reference_range_query
from repro.service.server import LocationServer
from repro.sim.fleet import FleetLane, FleetSimulation
from repro.sim.workload import QueryWorkload
from repro.traces.trace import Trace


def make_message(sequence=0, time=0.0, position=(0.0, 0.0), velocity=(10.0, 0.0),
                 uncertainty=0.0):
    state = ObjectState(
        time=time, position=position, velocity=velocity,
        speed=float(np.hypot(*velocity)), uncertainty=uncertainty,
    )
    return UpdateMessage(sequence=sequence, state=state, reason=UpdateReason.THRESHOLD)


def _straight_trace(n: int = 40, dt: float = 1.0, speed: float = 15.0) -> Trace:
    times = np.arange(n) * dt
    return Trace(times, np.column_stack((times * speed, np.zeros(n))))


def _library_lanes():
    return fleet_lanes([FleetMix.parse("city:linear:100:4")], scale=0.15, seed=7)


def _small_plan(max_batches=25, max_queries=15, rate=3.0, seed=5):
    workload = QueryWorkload(arrival_rate_per_s=rate, seed=seed)
    return build_replay_plan(
        _library_lanes(), workload, max_batches=max_batches, max_queries=max_queries
    )


# --------------------------------------------------------------------------- #
# channel delivery ties (satellite 1)
# --------------------------------------------------------------------------- #
class TestChannelDeliveryTies:
    def test_deliver_due_survives_tied_delivery_instants(self):
        # Two messages from the same object due at the same instant used to
        # crash: sorted() fell through the equal (deliver_at, object_id)
        # prefix into comparing UpdateMessage objects.
        channel = MessageChannel(latency=2.0)
        channel.send("obj", make_message(sequence=2, time=1.0), time=1.0)
        channel.send("obj", make_message(sequence=1, time=1.0), time=1.0)
        delivered = channel.deliver_due(5.0)
        assert [m.sequence for _, m in delivered] == [1, 2]

    def test_tie_break_is_per_object_send_order(self):
        channel = MessageChannel()
        channel.send("b", make_message(sequence=1), time=0.0)
        channel.send("a", make_message(sequence=3), time=0.0)
        channel.send("a", make_message(sequence=2), time=0.0)
        delivered = channel.deliver_due(0.0)
        assert [(oid, m.sequence) for oid, m in delivered] == [
            ("a", 2), ("a", 3), ("b", 1),
        ]

    def test_event_kernel_batch_sort_uses_same_key(self):
        # The event kernel batches simultaneous DELIVERY events and sorts
        # them with delivery_order; tied entries must order by sequence,
        # not raise.
        m1, m2 = make_message(sequence=1), make_message(sequence=2)
        entries = [(5.0, "obj", m2), (5.0, "obj", m1), (4.0, "zzz", m2)]
        entries.sort(key=delivery_order)
        assert [(t, oid, m.sequence) for t, oid, m in entries] == [
            (4.0, "zzz", 2), (5.0, "obj", 1), (5.0, "obj", 2),
        ]

    def test_both_kernels_deliver_tied_instants_identically(self):
        # A latency that parks several objects' sends on the same delivery
        # instant exercises the tie-handling sort inside a real run on both
        # kernels; the two runs must also stay bit-identical.
        from repro.protocols.linear import LinearPredictionProtocol

        def _run(kernel):
            lanes = [
                FleetLane(
                    object_id=f"o{n}",
                    protocol=LinearPredictionProtocol(accuracy=30.0),
                    sensor_trace=_straight_trace(),
                )
                for n in range(3)
            ]
            channel = MessageChannel(latency=3.0)
            for lane in lanes:
                lane.channel = channel
            return FleetSimulation(lanes, kernel=kernel).run()

        tick, event = _run("tick"), _run("event")
        assert tick.total_updates > 0
        assert tick.total_updates == event.total_updates
        for oid in tick.results:
            assert tick.results[oid].updates == event.results[oid].updates


# --------------------------------------------------------------------------- #
# channel reuse across runs and kernels (satellite 2)
# --------------------------------------------------------------------------- #
class TestChannelReuse:
    def test_reset_unbinds_scheduler(self):
        channel = MessageChannel()
        routed = []
        channel.bind_scheduler(lambda t, oid, m: routed.append((t, oid, m)))
        channel.reset()
        channel.send("obj", make_message(sequence=1), time=0.0)
        # The send must queue for tick delivery, not route into the dead
        # scheduler.
        assert routed == []
        assert channel.in_flight == 1
        assert [m.sequence for _, m in channel.deliver_due(0.0)] == [1]

    def test_rebind_after_reset_does_not_raise(self):
        channel = MessageChannel()
        channel.bind_scheduler(lambda *entry: None)
        channel.reset()
        channel.bind_scheduler(lambda *entry: None)  # previously: RuntimeError

    def test_double_bind_raises_and_leaves_channel_usable(self):
        channel = MessageChannel()
        channel.bind_scheduler(lambda *entry: None)
        with pytest.raises(RuntimeError):
            channel.bind_scheduler(lambda *entry: None)
        channel.unbind_scheduler()
        channel.send("obj", make_message(), time=0.0)
        assert len(channel.deliver_due(0.0)) == 1

    def _lanes(self, channel):
        from repro.protocols.linear import LinearPredictionProtocol

        return [
            FleetLane(
                object_id="obj",
                protocol=LinearPredictionProtocol(accuracy=25.0),
                sensor_trace=_straight_trace(),
                channel=channel,
            )
        ]

    def _updates(self, result):
        return result.results["obj"].updates

    def test_channel_reused_tick_then_event(self):
        channel = MessageChannel(latency=1.0)
        first = FleetSimulation(self._lanes(channel), kernel="tick").run()
        # The same channel instance now serves an event run; reset() at run
        # start must leave no tick-queue or scheduler residue.
        second = FleetSimulation(self._lanes(channel), kernel="event").run()
        fresh = FleetSimulation(
            self._lanes(MessageChannel(latency=1.0)), kernel="event"
        ).run()
        assert self._updates(first) > 0
        assert self._updates(second) == self._updates(fresh)
        assert channel.stats.messages_sent == channel.stats.messages_delivered

    def test_channel_reused_event_then_event(self):
        channel = MessageChannel(latency=1.0)
        first = FleetSimulation(self._lanes(channel), kernel="event").run()
        second = FleetSimulation(self._lanes(channel), kernel="event").run()
        assert self._updates(first) == self._updates(second) > 0

    def test_stale_bound_channel_is_safe_to_hand_to_a_new_run(self):
        # The orphaning bug: a channel still bound to a finished kernel's
        # scheduler would route every send into that dead agenda.  reset()
        # at run start must sever the binding so updates reach the server.
        channel = MessageChannel()
        dead_agenda = []
        channel.bind_scheduler(lambda t, oid, m: dead_agenda.append(m))
        result = FleetSimulation(self._lanes(channel), kernel="tick").run()
        assert dead_agenda == []
        assert self._updates(result) > 0


# --------------------------------------------------------------------------- #
# facade margin queries with all-infinite accuracies (satellite 3)
# --------------------------------------------------------------------------- #
class TestMarginRangeQueryInfiniteAccuracy:
    def _populated(self, n_shards):
        rng = np.random.default_rng(42)
        service = LocationService(n_shards=n_shards, region_size=400.0)
        reference = LocationServer()
        batch = []
        for i in range(40):
            object_id = f"obj{i:02d}"
            service.register_object(object_id)  # accuracy defaults to inf
            reference.register_object(object_id)
            position = tuple(rng.uniform(-1000.0, 1000.0, size=2))
            velocity = tuple(rng.uniform(-15.0, 15.0, size=2))
            batch.append((object_id, make_message(
                sequence=1, time=0.0, position=position, velocity=velocity,
            )))
        service.ingest_batch(batch, 0.0)
        for object_id, message in batch:
            reference.receive_update(object_id, message, 0.0)
        return service, reference

    @pytest.mark.parametrize("n_shards", [1, 4])
    @pytest.mark.parametrize("margin", [0.5, 1.0, 3.0])
    def test_bit_identical_to_reference_scans(self, n_shards, margin):
        service, reference = self._populated(n_shards)
        assert service._max_finite_accuracy == 0.0
        boxes = [
            BoundingBox(-200.0, -200.0, 200.0, 200.0),
            BoundingBox(-1200.0, -1200.0, 1200.0, 1200.0),
            BoundingBox(500.0, -100.0, 900.0, 350.0),
            BoundingBox(2000.0, 2000.0, 2100.0, 2100.0),  # empty
        ]
        for t in (0.0, 7.5, 30.0):
            for box in boxes:
                assert service.range_query(box, t, margin=margin) == \
                    reference_range_query(reference, box, t, margin=margin)

    def test_margin_is_inert_when_every_accuracy_is_infinite(self):
        # With no finite accuracy there is nothing to expand by: the
        # margin'd answer must equal the exact one on both implementations.
        service, reference = self._populated(2)
        box = BoundingBox(-300.0, -300.0, 300.0, 300.0)
        assert service.range_query(box, 5.0, margin=2.0) == \
            service.range_query(box, 5.0)
        assert reference_range_query(reference, box, 5.0, margin=2.0) == \
            reference_range_query(reference, box, 5.0)


# --------------------------------------------------------------------------- #
# wire protocol and latency accounting
# --------------------------------------------------------------------------- #
class TestWireProtocol:
    def test_message_roundtrip_is_exact(self):
        message = make_message(
            sequence=17, time=12.34567890123, position=(0.1 + 0.2, -1234.5678),
            velocity=(33.333333333333336, -0.1), uncertainty=float("inf"),
        )
        object_id, decoded = decode_message(encode_message("car/1", message))
        assert object_id == "car/1"
        assert decoded.sequence == message.sequence
        assert decoded.reason == message.reason
        assert decoded.state.time == message.state.time
        assert np.array_equal(decoded.state.position, message.state.position)
        assert np.array_equal(decoded.state.velocity, message.state.velocity)
        assert decoded.state.speed == message.state.speed
        assert decoded.state.uncertainty == float("inf")
        assert decoded.state.link_id is None

    def test_answer_roundtrip_is_exact(self):
        range_answer = ["a", "b", "c"]
        scored = [("x", 0.1 + 0.2), ("y", float(np.pi))]
        assert decode_answer("range", encode_answer("range", range_answer)) == range_answer
        assert decode_answer("nearest", encode_answer("nearest", scored)) == scored

    def _read(self, payload: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(payload)
            reader.feed_eof()
            return await read_frame(reader)

        return asyncio.run(go())

    def test_read_frame_clean_eof_returns_none(self):
        assert self._read(b"") is None

    def test_read_frame_rejects_garbage(self):
        import struct

        with pytest.raises(FrameError):
            self._read(struct.pack(">I", 3) + b"{x}")  # invalid JSON
        with pytest.raises(FrameError):
            self._read(struct.pack(">I", 2) + b"[]")  # not an object
        with pytest.raises(FrameError):
            self._read(struct.pack(">I", 10) + b"short")  # closed mid-frame
        with pytest.raises(FrameError):
            self._read(struct.pack(">I", 1 << 30))  # oversized


class TestLatencyRecorder:
    def test_nearest_rank_percentiles(self):
        recorder = LatencyRecorder([0.004, 0.001, 0.003, 0.002])
        assert recorder.percentile(50.0) == 0.002
        assert recorder.percentile(75.0) == 0.003
        assert recorder.percentile(100.0) == 0.004
        assert recorder.percentile(1.0) == 0.001
        assert recorder.mean() == pytest.approx(0.0025)

    def test_summary_and_merge(self):
        a, b = LatencyRecorder([0.001]), LatencyRecorder([0.003])
        a.merge(b)
        summary = a.summary()
        assert summary["count"] == 2
        assert summary["avg_ms"] == 2.0
        assert summary["p50_ms"] == 1.0
        assert summary["p99_ms"] == 3.0
        assert summary["max_ms"] == 3.0
        empty = LatencyRecorder().summary()
        assert empty["count"] == 0 and empty["p99_ms"] == 0.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            LatencyRecorder([0.1]).percentile(0.0)


# --------------------------------------------------------------------------- #
# the live server
# --------------------------------------------------------------------------- #
def _gate_writer(server: LiveLocationServer) -> asyncio.Event:
    """Hold the server's ingest writer until the returned event is set.

    Lets a test fill the bounded queue deterministically: nothing drains
    while the gate is closed, so backpressure becomes observable without
    timing games.
    """
    gate = asyncio.Event()
    original = server._drain_ingest_queue

    async def gated():
        await gate.wait()
        await original()

    server._drain_ingest_queue = gated
    return gate


class TestLiveServer:
    def test_ping_register_and_errors(self):
        async def go():
            server = LiveLocationServer()
            host, port = await server.start()
            try:
                async with await LiveClient.connect(host, port) as client:
                    assert await client.ping() == 0
                    registered = await client.register([
                        {"id": "a", "prediction": "linear", "accuracy": 50.0},
                        {"id": "b"},
                    ])
                    assert registered == ["a", "b"]
                    with pytest.raises(LiveRequestError):
                        await client.register([{"id": "c", "prediction": "warp"}])
                    with pytest.raises(LiveRequestError):
                        await client.request({"op": "no-such-op"})
                    # Ingesting for an unknown object is an error, and the
                    # connection survives it.
                    with pytest.raises(LiveRequestError):
                        await client.ingest(0.0, [("ghost", make_message())])
                    response = await client.ingest(
                        0.0, [("a", make_message(sequence=1, position=(5.0, 5.0)))]
                    )
                    assert response["seq"] == 1
                    answer, at_seq = await client.nearest_objects(
                        (0.0, 0.0), 0.0, k=1, min_seq=1
                    )
                    assert at_seq >= 1
                    assert [oid for oid, _ in answer] == ["a"]
                    # A watermark ahead of everything ever accepted can
                    # never be satisfied — error, not a hang.
                    with pytest.raises(LiveRequestError):
                        await client.range_query(
                            BoundingBox(0, 0, 1, 1), 0.0, min_seq=99
                        )
            finally:
                await server.stop()

        asyncio.run(go())

    def test_backpressure_rejects_without_wait(self):
        async def go():
            service = LocationService()
            service.register_object("obj")
            server = LiveLocationServer(service, ingest_queue_size=2)
            gate = _gate_writer(server)
            host, port = await server.start()
            try:
                async with await LiveClient.connect(host, port) as client:
                    batch = [("obj", make_message(sequence=1))]
                    first = await client.ingest(0.0, batch, wait=False)
                    second = await client.ingest(1.0, batch, wait=False)
                    assert first["seq"] == 1 and second["seq"] == 2
                    # Queue (size 2) is full and nothing drains: shed-load
                    # requests are rejected, not buffered.
                    third = await client.ingest(2.0, batch, wait=False, check=False)
                    assert third["ok"] is False and third["rejected"] is True
                    assert server.rejected_batches == 1
                    assert server.ingest_queue_depth == 2
                    gate.set()
                    # Once the writer drains, the same request succeeds and
                    # nothing was lost: seqs 1 and 2 were applied.
                    fourth = await client.ingest(3.0, batch, wait=False)
                    assert fourth["seq"] == 3
                    answer, at_seq = await client.nearest_objects(
                        (0.0, 0.0), 0.0, k=1, min_seq=3
                    )
                    assert at_seq == 3 and len(answer) == 1
            finally:
                await server.stop()

        asyncio.run(go())

    def test_backpressure_delays_with_wait(self):
        async def go():
            service = LocationService()
            service.register_object("obj")
            server = LiveLocationServer(service, ingest_queue_size=1)
            gate = _gate_writer(server)
            host, port = await server.start()
            try:
                async with await LiveClient.connect(host, port) as client:
                    batch = [("obj", make_message(sequence=1))]
                    await client.ingest(0.0, batch)  # fills the queue
                    # The next waiting ingest must stall (bounded queue),
                    # not complete and not grow memory.
                    blocked = asyncio.create_task(client.ingest(1.0, batch))
                    await asyncio.sleep(0.05)
                    assert not blocked.done()
                    assert server.ingest_queue_depth == 1
                    gate.set()
                    response = await asyncio.wait_for(blocked, timeout=2.0)
                    assert response["seq"] == 2
            finally:
                await server.stop()

        asyncio.run(go())

    def test_clean_shutdown_applies_accepted_batches(self):
        async def go():
            service = LocationService()
            service.register_object("obj")
            server = LiveLocationServer(service, ingest_queue_size=4)
            gate = _gate_writer(server)
            host, port = await server.start()
            client = await LiveClient.connect(host, port)
            batch = [("obj", make_message(sequence=1, position=(7.0, 7.0)))]
            await client.ingest(0.0, batch)
            await client.ingest(1.0, batch)
            await client.close()
            # Two acknowledged batches still sit in the queue; a clean stop
            # must apply them before returning.
            assert server.applied_seq == 0
            gate.set()
            await server.stop(grace=2.0)
            assert server.applied_seq == server.enqueued_seq == 2
            assert len(service.nearest_objects((0.0, 0.0), 0.0, k=1)) == 1
            # The listener is gone: new connections are refused.
            with pytest.raises(OSError):
                await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout=1.0
                )

        asyncio.run(go())

    def test_shutdown_with_idle_connection_does_not_hang(self):
        async def go():
            server = LiveLocationServer()
            host, port = await server.start()
            client = await LiveClient.connect(host, port)
            assert await client.ping() == 0
            # The connection stays open (handler parked on read_frame); the
            # grace period must cut it loose rather than hang the stop.
            await asyncio.wait_for(server.stop(grace=0.2), timeout=5.0)
            await client.close()

        asyncio.run(go())

    def test_shutdown_op_releases_run_until_shutdown(self):
        async def go():
            server = LiveLocationServer()
            host, port = await server.start()
            runner = asyncio.create_task(server.run_until_shutdown())
            async with await LiveClient.connect(host, port) as client:
                await client.shutdown()
            await asyncio.wait_for(runner, timeout=5.0)

        asyncio.run(go())


# --------------------------------------------------------------------------- #
# replayed scenario traffic: the bit-identity guarantee
# --------------------------------------------------------------------------- #
class TestReplayedTraffic:
    def test_plan_extraction(self):
        plan = _small_plan()
        assert plan.batches and plan.calls
        assert plan.total_updates >= len(plan.batches)
        times = [t for t, _ in plan.batches]
        assert times == sorted(times)
        assert all(call.kind in ("range", "nearest", "geofence") for call in plan.calls)
        # The Poisson stream is the workload's seeded machinery: same seed,
        # same calls.
        again = _small_plan()
        assert again.calls == plan.calls

    def _run(self, plan, mode, clients, n_shards=2, queue_size=8):
        async def go():
            server = LiveLocationServer(
                service_for_plan(plan, n_shards=n_shards),
                ingest_queue_size=queue_size,
            )
            host, port = await server.start()
            try:
                return await run_load_test(
                    plan, host, port, clients=clients, mode=mode
                )
            finally:
                await server.stop()

        return asyncio.run(go())

    def test_lockstep_answers_bit_identical_to_facade(self):
        plan = _small_plan()
        report = self._run(plan, "lockstep", 1)
        assert report.accepted_batches == len(plan.batches)
        assert len(report.query_records) == len(plan.calls)
        assert mismatched_answers(plan, report, n_shards=2) == []
        # Lockstep watermarks make the schedule itself deterministic: every
        # query was answered with exactly the batches that preceded it in
        # plan order applied.
        merged = sorted(
            [(t, 0, i) for i, (t, _) in enumerate(plan.batches)]
            + [(c.time, 1, i) for i, c in enumerate(plan.calls)]
        )
        expected_at = {}
        seq = 0
        for _t, kind, index in merged:
            if kind == 0:
                seq += 1
            else:
                expected_at[index] = seq
        for call_index, at_seq, _answer in report.query_records:
            assert at_seq == expected_at[call_index]

    def test_concurrent_answers_bit_identical_to_facade(self):
        plan = _small_plan()
        report = self._run(plan, "concurrent", 3)
        assert report.accepted_batches == len(plan.batches)
        assert len(report.query_records) == len(plan.calls)
        assert report.query_latency.summary()["p99_ms"] > 0.0
        assert mismatched_answers(plan, report, n_shards=2) == []

    def test_concurrent_with_load_shedding_stays_bit_identical(self):
        # A tiny queue plus no-wait ingest drops batches; the identity must
        # hold for whatever schedule actually executed.
        plan = _small_plan(max_batches=40, max_queries=10)

        async def go():
            server = LiveLocationServer(
                service_for_plan(plan, n_shards=1), ingest_queue_size=1
            )
            host, port = await server.start()
            try:
                return await run_load_test(
                    plan, host, port, clients=4, mode="concurrent", wait=False
                )
            finally:
                await server.stop()

        report = asyncio.run(go())
        assert report.accepted_batches + report.rejected_batches == len(plan.batches)
        assert mismatched_answers(plan, report, n_shards=1) == []

    def test_report_metrics_shape(self):
        plan = _small_plan(max_batches=10, max_queries=5)
        report = self._run(plan, "lockstep", 1, n_shards=1)
        summary = report.as_dict()
        assert summary["throughput_rps"] > 0
        assert summary["queries"] == 5
        for side in ("ingest", "query"):
            for key in ("count", "avg_ms", "p50_ms", "p95_ms", "p99_ms"):
                assert key in summary[side]
        assert summary["query"]["p99_ms"] >= summary["query"]["p50_ms"]


class TestQueryCoalescing:
    """Concurrent queries sharing a watermark are answered by one flush."""

    @staticmethod
    def _populated_service(n=40):
        service = LocationService(n_shards=2, region_size=500.0)
        rng = np.random.default_rng(7)
        for i in range(n):
            oid = f"o{i}"
            service.register_object(oid)
            x, y = rng.uniform(0.0, 4000.0, size=2)
            service.receive_update(
                oid, make_message(position=(float(x), float(y)), velocity=(0.0, 0.0)), 0.0
            )
        return service

    def test_gathered_queries_share_one_flush(self):
        from repro.obs import Observability

        async def go():
            service = self._populated_service()
            server = LiveLocationServer(service, obs=Observability())
            requests = [
                ("nearest", {"t": 0.0, "point": [100.0 * i, 50.0 * i], "k": 3})
                for i in range(6)
            ]
            responses = await asyncio.gather(
                *[server._handle_query(op, dict(req)) for op, req in requests]
            )
            assert all(r["ok"] for r in responses)
            seqs = {r["at_seq"] for r in responses}
            assert seqs == {0}  # one applied_seq read for the whole batch
            snap = server.obs.registry.snapshot()
            hist = snap["live.query.batch_size"]
            assert hist["count"] == 1  # six queries, a single flush
            assert hist["max"] == 6.0
            return responses

        asyncio.run(go())

    def test_coalesced_answers_match_direct_facade(self):
        from repro.service.live.protocol import decode_answer as _decode

        async def go():
            service = self._populated_service()
            mirror = self._populated_service()
            server = LiveLocationServer(service)
            requests = [
                ("nearest", {"t": 0.0, "point": [500.0, 500.0], "k": 4}),
                ("range", {"t": 0.0, "box": [0.0, 0.0, 2000.0, 2000.0]}),
                ("geofence", {"t": 0.0, "point": [1500.0, 1500.0], "radius": 900.0}),
            ]
            responses = await asyncio.gather(
                *[server._handle_query(op, dict(req)) for op, req in requests]
            )
            expected = [
                mirror.nearest_objects((500.0, 500.0), 0.0, k=4),
                mirror.range_query(BoundingBox(0.0, 0.0, 2000.0, 2000.0), 0.0),
                mirror.geofence_query((1500.0, 1500.0), 900.0, 0.0),
            ]
            for (op, _), response, want in zip(requests, responses, expected):
                assert response["ok"]
                assert _decode(op, response["answer"]) == want

        asyncio.run(go())

    def test_bad_query_in_batch_does_not_poison_the_rest(self):
        async def go():
            service = self._populated_service()
            server = LiveLocationServer(service)
            good = ("nearest", {"t": 0.0, "point": [100.0, 100.0], "k": 2})
            bad = ("geofence", {"t": 0.0, "point": [100.0, 100.0]})  # no radius
            responses = await asyncio.gather(
                server._handle_query(*good),
                server._handle_query(*bad),
                server._handle_query(*good),
            )
            assert responses[0]["ok"] and responses[2]["ok"]
            assert responses[0] == responses[2]
            assert responses[1]["ok"] is False
            assert "error" in responses[1]

        asyncio.run(go())


class TestLiveRebalance:
    """The rebalance hook runs between ingest batches under live traffic."""

    @staticmethod
    def _skewed_pair():
        """Two identical skewed services (one gets rebalanced, one never)."""
        from repro.service.sharding import RebalancePolicy

        def build():
            service = LocationService(n_shards=3, region_size=100.0)
            hot_cells = []
            for cx in range(40):
                for cy in range(40):
                    if service.policy.hash_shard_for_cell((cx, cy)) == 0:
                        hot_cells.append((cx, cy))
                        if len(hot_cells) == 4:
                            break
                if len(hot_cells) == 4:
                    break
            counts = (30, 20, 14, 8)
            for j, (cell, count) in enumerate(zip(hot_cells, counts)):
                for i in range(count):
                    oid = f"hot{j}-{i}"
                    x = (cell[0] + 0.1 + 0.8 * (i % 7) / 7.0) * 100.0
                    y = (cell[1] + 0.1 + 0.8 * (i // 7 % 7) / 7.0) * 100.0
                    service.register_object(oid)
                    service.receive_update(
                        oid, make_message(position=(x, y), velocity=(0.0, 0.0)), 0.0
                    )
            return service

        return build(), build(), RebalancePolicy(skew_threshold=1.4, min_objects=16)

    def test_rebalance_fires_under_live_ingest_and_answers_unchanged(self):
        async def go():
            service, mirror, policy = self._skewed_pair()
            server = LiveLocationServer(service, rebalance=policy)
            host, port = await server.start()
            try:
                async with await LiveClient.connect(host, port) as client:
                    batch = [
                        ("hot0-0", make_message(sequence=1, time=1.0,
                                                position=(20.0, 20.0),
                                                velocity=(0.0, 0.0)))
                    ]
                    response = await client.ingest(1.0, batch)
                    mirror.ingest_batch(batch, 1.0)
                    answer, at_seq = await client.nearest_objects(
                        (150.0, 150.0), 1.0, k=6, min_seq=response["seq"]
                    )
                    assert at_seq >= response["seq"]
                    assert server.rebalance_passes >= 1
                    assert policy.objects_moved > 0
                    # Placement changed, answers did not: the never-rebalanced
                    # mirror gives bit-identical results.
                    assert answer == mirror.nearest_objects((150.0, 150.0), 1.0, k=6)
                    fence, _ = await client.geofence_query(
                        (150.0, 150.0), 400.0, 1.0, min_seq=response["seq"]
                    )
                    assert fence == mirror.geofence_query((150.0, 150.0), 400.0, 1.0)
                    stats = await client.request({"op": "stats"})
                    assert stats["server"]["rebalance_passes"] == server.rebalance_passes
                    report = stats["server"]["rebalance"]
                    assert report is not None
                    assert report["skew_after"] < report["skew_before"]
                    # The skew actually fell below the trigger threshold.
                    imbalance = stats["service"]["load_imbalance"]
                    assert imbalance < 1.4
            finally:
                await server.stop()

        asyncio.run(go())
