"""The four canonical movement scenarios of the paper's evaluation.

Each scenario bundles everything a protocol comparison needs:

* a synthetic road network with the right structural characteristics,
* a route over it whose length matches the corresponding trace of Table 1,
* the simulated ground-truth journey (positions + ground-truth links),
* the noisy sensor trace the protocols actually see (DGPS-like noise),
* the heading-estimation window the paper recommends for the movement class,
* and the sweep of requested uncertainties ``us`` used in Figures 7-10.

A ``scale`` parameter shrinks route length proportionally, which the
benchmarks use to keep wall-clock time reasonable while preserving the
qualitative results (update *rates* are intensive quantities).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


from repro.geo.angles import angle_between
from repro.mobility.kinematics import DriverProfile
from repro.mobility.pedestrian import PedestrianProfile, PedestrianSimulator
from repro.mobility.vehicle import SimulatedJourney, VehicleSimulator
from repro.roadmap.elements import Link, RoadClass
from repro.roadmap.generators import (
    city_grid_map,
    freeway_map,
    interurban_map,
    pedestrian_map,
)
from repro.roadmap.graph import RoadMap
from repro.roadmap.routing import Route, RoutePlanner
from repro.traces.noise import GaussMarkovNoise
from repro.traces.trace import Trace


class ScenarioName(str, enum.Enum):
    """Identifiers of the four movement patterns evaluated in the paper."""

    FREEWAY = "freeway"
    INTERURBAN = "interurban"
    CITY = "city"
    WALKING = "walking"


@dataclass
class Scenario:
    """A fully materialised evaluation scenario.

    Attributes
    ----------
    name:
        Scenario identifier.
    description:
        Human-readable description used in reports.
    roadmap:
        The road network the object moves on.
    route:
        The driven/walked route.
    journey:
        Ground-truth simulation output (true positions and link ids).
    sensor_trace:
        The noisy trace the protocols consume (what the GPS receiver reports).
    sensor_sigma:
        1-sigma sensor error in metres (the paper's ``up``).
    estimation_window:
        Number of sightings used to estimate speed/heading (paper Sec. 4).
    us_values:
        Requested-uncertainty sweep for this scenario's figure.
    matching_tolerance:
        Map-matching tolerance ``um`` in metres (paper Sec. 3).
    """

    name: ScenarioName | str
    description: str
    roadmap: RoadMap
    route: Route
    journey: SimulatedJourney
    sensor_trace: Trace
    sensor_sigma: float
    estimation_window: int
    us_values: List[float]
    matching_tolerance: float = 30.0

    @property
    def key(self) -> str:
        """The scenario's registry name as a plain string.

        Canonical scenarios carry a :class:`ScenarioName` member, generated
        ones a plain string; this property is the uniform accessor.
        """
        return self.name.value if isinstance(self.name, ScenarioName) else str(self.name)

    @property
    def true_trace(self) -> Trace:
        """Ground-truth trace (no sensor noise)."""
        return self.journey.trace

    def summary(self) -> Dict[str, float]:
        """Key characteristics, comparable to a row of the paper's Table 1."""
        trace = self.true_trace
        return {
            "length_km": trace.path_length() / 1000.0,
            "duration_h": trace.duration / 3600.0,
            "average_speed_kmh": (trace.path_length() / trace.duration) * 3.6
            if trace.duration > 0
            else 0.0,
            "samples": float(len(trace)),
        }


# --------------------------------------------------------------------------- #
# route construction helpers
# --------------------------------------------------------------------------- #
def corridor_route(roadmap: RoadMap, road_class: RoadClass) -> Route:
    """Follow the chain of links of *road_class* from one end to the other.

    Used to extract the main corridor out of the freeway and inter-urban
    maps: starting from an end node that has exactly one outgoing link of
    the class, repeatedly follow the same-class successor with the smallest
    turn angle until the chain ends.
    """
    def class_links(node_id: int) -> List[Link]:
        return [l for l in roadmap.outgoing_links(node_id) if l.road_class == road_class]

    end_nodes = [
        nid for nid in roadmap.intersections if len(class_links(nid)) == 1
    ]
    if not end_nodes:
        raise ValueError(f"no corridor of class {road_class} found in the map")
    start_node = min(end_nodes)
    current = class_links(start_node)[0]
    links = [current]
    visited = {current.id}
    while True:
        candidates = [
            l
            for l in roadmap.successors(current)
            if l.road_class == road_class and l.id not in visited
        ]
        if not candidates:
            break
        exit_dir = current.direction_at(current.length)
        current = min(
            candidates,
            key=lambda link: (angle_between(exit_dir, link.direction_at(0.0)), link.id),
        )
        links.append(current)
        visited.add(current.id)
        # Do not revisit the reverse carriageway once the far end is reached.
        reverse = roadmap.reverse_link(current)
        if reverse is not None:
            visited.add(reverse.id)
    return Route(roadmap, links)


def _truncate_route(route: Route, max_length: float) -> Route:
    """Shorten *route* to at most *max_length* metres (whole links)."""
    if route.length <= max_length:
        return route
    links = []
    total = 0.0
    for link in route.links:
        links.append(link)
        total += link.length
        if total >= max_length:
            break
    return Route(route.roadmap, links)


# --------------------------------------------------------------------------- #
# scenario builders
# --------------------------------------------------------------------------- #
#: Requested-uncertainty sweep used by the paper's car figures (20-500 m).
CAR_US_SWEEP = [20.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 500.0]
#: Requested-uncertainty sweep used by the walking figure (20-250 m).
WALK_US_SWEEP = [20.0, 50.0, 100.0, 150.0, 200.0, 250.0]


def freeway_scenario(seed: int = 0, scale: float = 1.0) -> Scenario:
    """Car on a freeway: ~163 km, average speed ~103 km/h (paper Table 1)."""
    _check_scale(scale)
    rng = random.Random(seed)
    target_length = 163_000.0 * scale
    roadmap = freeway_map(
        length_km=max(20.0, 170.0 * scale + 10.0), interchange_spacing_km=4.0, seed=seed
    )
    route = _truncate_route(corridor_route(roadmap, RoadClass.MOTORWAY), target_length)
    profile = DriverProfile(
        speed_factor=0.88,
        max_acceleration=1.5,
        max_deceleration=2.0,
        lateral_acceleration=3.5,
        stop_probability=0.0,
        speed_noise_sigma=0.05,
    )
    journey = VehicleSimulator(route, profile, rng=rng).run(name="car, freeway")
    noise = GaussMarkovNoise(sigma=2.5, correlation_time=60.0, seed=seed + 1000)
    return Scenario(
        name=ScenarioName.FREEWAY,
        description="car on a freeway",
        roadmap=roadmap,
        route=route,
        journey=journey,
        sensor_trace=noise.apply(journey.trace),
        sensor_sigma=noise.typical_error,
        estimation_window=2,
        us_values=list(CAR_US_SWEEP),
    )


def interurban_scenario(seed: int = 1, scale: float = 1.0) -> Scenario:
    """Car in inter-urban traffic: ~99 km, average speed ~60 km/h."""
    _check_scale(scale)
    rng = random.Random(seed)
    target_length = 99_000.0 * scale
    n_towns = max(3, int(round(6 * max(scale, 0.34))))
    roadmap = interurban_map(
        n_towns=n_towns,
        town_spacing_km=18.0 * min(1.0, scale * 1.2 + 0.4),
        seed=seed,
        speed_limit_kmh=80.0,
    )
    route = _truncate_route(corridor_route(roadmap, RoadClass.PRIMARY), target_length)
    profile = DriverProfile(
        speed_factor=0.85,
        max_acceleration=1.6,
        max_deceleration=2.2,
        lateral_acceleration=2.5,
        stop_probability=0.3,
        stop_duration_range=(5.0, 40.0),
        speed_noise_sigma=0.06,
    )
    journey = VehicleSimulator(route, profile, rng=rng).run(name="car, inter-urban")
    noise = GaussMarkovNoise(sigma=2.5, correlation_time=60.0, seed=seed + 1000)
    return Scenario(
        name=ScenarioName.INTERURBAN,
        description="car in inter-urban traffic",
        roadmap=roadmap,
        route=route,
        journey=journey,
        sensor_trace=noise.apply(journey.trace),
        sensor_sigma=noise.typical_error,
        estimation_window=4,
        us_values=list(CAR_US_SWEEP),
    )


def city_scenario(seed: int = 2, scale: float = 1.0) -> Scenario:
    """Car in city traffic: ~89 km, average speed ~34 km/h."""
    _check_scale(scale)
    rng = random.Random(seed)
    target_length = 89_000.0 * scale
    roadmap = city_grid_map(rows=16, cols=16, spacing_m=250.0, seed=seed)
    planner = RoutePlanner(roadmap)
    # Real city trips go straight through most intersections and turn only
    # occasionally; a fully uniform random walk would turn at two out of
    # three crossings, which no recorded trace does.
    route = planner.random_route(min_length=target_length, rng=rng, straight_bias=0.75)
    profile = DriverProfile(
        speed_factor=0.87,
        max_acceleration=1.8,
        max_deceleration=2.5,
        lateral_acceleration=2.0,
        stop_probability=0.3,
        stop_duration_range=(5.0, 35.0),
        speed_noise_sigma=0.08,
    )
    journey = VehicleSimulator(route, profile, rng=rng).run(name="car, city traffic")
    noise = GaussMarkovNoise(sigma=2.5, correlation_time=60.0, seed=seed + 1000)
    return Scenario(
        name=ScenarioName.CITY,
        description="car in city traffic",
        roadmap=roadmap,
        route=route,
        journey=journey,
        sensor_trace=noise.apply(journey.trace),
        sensor_sigma=noise.typical_error,
        estimation_window=4,
        us_values=list(CAR_US_SWEEP),
    )


def walking_scenario(seed: int = 3, scale: float = 1.0) -> Scenario:
    """Walking person: ~10 km, average speed ~4.6 km/h."""
    _check_scale(scale)
    rng = random.Random(seed)
    target_length = 10_000.0 * scale
    roadmap = pedestrian_map(rows=20, cols=20, spacing_m=90.0, seed=seed)
    planner = RoutePlanner(roadmap)
    # Pedestrians change direction more often than cars but still mostly
    # keep walking along the same street.
    route = planner.random_route(min_length=target_length, rng=rng, straight_bias=0.55)
    route = _truncate_route(route, target_length)
    profile = PedestrianProfile(
        walking_speed_factor=0.88,
        pause_probability=0.08,
        pause_duration_range=(5.0, 40.0),
        speed_noise_sigma=0.1,
    )
    journey = PedestrianSimulator(route, profile, rng=rng).run(name="walking person")
    noise = GaussMarkovNoise(sigma=2.5, correlation_time=60.0, seed=seed + 1000)
    return Scenario(
        name=ScenarioName.WALKING,
        description="walking person",
        roadmap=roadmap,
        route=route,
        journey=journey,
        sensor_trace=noise.apply(journey.trace),
        sensor_sigma=noise.typical_error,
        estimation_window=8,
        us_values=list(WALK_US_SWEEP),
        matching_tolerance=20.0,
    )


_BUILDERS: Dict[ScenarioName, Callable[..., Scenario]] = {
    ScenarioName.FREEWAY: freeway_scenario,
    ScenarioName.INTERURBAN: interurban_scenario,
    ScenarioName.CITY: city_scenario,
    ScenarioName.WALKING: walking_scenario,
}


def build_scenario(
    name: ScenarioName | str, seed: Optional[int] = None, scale: float = 1.0
) -> Scenario:
    """Build one of the four canonical scenarios by name."""
    key = ScenarioName(name)
    builder = _BUILDERS[key]
    if seed is None:
        return builder(scale=scale)
    return builder(seed=seed, scale=scale)


def all_scenarios(scale: float = 1.0) -> List[Scenario]:
    """Build all four canonical scenarios (freeway, inter-urban, city, walking)."""
    return [build_scenario(name, scale=scale) for name in ScenarioName]


def _check_scale(scale: float) -> None:
    if not (0.0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
