"""Unit tests for repro.geo.angles."""

import math

import pytest

from repro.geo.angles import (
    angle_between,
    angle_difference,
    bearing,
    bearing_to_unit,
    normalize_angle,
    normalize_bearing,
    unit_to_bearing,
)


class TestNormalizeAngle:
    def test_identity_in_range(self):
        assert normalize_angle(0.5) == pytest.approx(0.5)

    def test_wraps_positive(self):
        assert normalize_angle(2 * math.pi + 0.3) == pytest.approx(0.3)

    def test_wraps_negative(self):
        assert normalize_angle(-2 * math.pi - 0.3) == pytest.approx(-0.3)

    def test_pi_maps_to_pi(self):
        assert normalize_angle(math.pi) == pytest.approx(math.pi)

    def test_minus_pi_maps_to_pi(self):
        assert normalize_angle(-math.pi) == pytest.approx(math.pi)


class TestNormalizeBearing:
    def test_in_range_unchanged(self):
        assert normalize_bearing(1.0) == pytest.approx(1.0)

    def test_negative_wraps(self):
        assert normalize_bearing(-0.5) == pytest.approx(2 * math.pi - 0.5)

    def test_full_turn_wraps_to_zero(self):
        assert normalize_bearing(2 * math.pi) == pytest.approx(0.0)


class TestAngleDifference:
    def test_zero_for_equal_angles(self):
        assert angle_difference(1.2, 1.2) == 0.0

    def test_symmetric(self):
        assert angle_difference(0.3, 2.1) == pytest.approx(angle_difference(2.1, 0.3))

    def test_wraps_around(self):
        assert angle_difference(0.1, 2 * math.pi - 0.1) == pytest.approx(0.2)

    def test_max_is_pi(self):
        assert angle_difference(0.0, math.pi) == pytest.approx(math.pi)


class TestBearing:
    def test_north(self):
        assert bearing((0, 0), (0, 10)) == pytest.approx(0.0)

    def test_east(self):
        assert bearing((0, 0), (10, 0)) == pytest.approx(math.pi / 2)

    def test_south(self):
        assert bearing((0, 0), (0, -10)) == pytest.approx(math.pi)

    def test_west(self):
        assert bearing((0, 0), (-10, 0)) == pytest.approx(3 * math.pi / 2)

    def test_roundtrip_with_unit(self):
        for b in (0.0, 0.7, math.pi / 2, 3.0, 5.5):
            unit = bearing_to_unit(b)
            assert unit_to_bearing(unit) == pytest.approx(b)

    def test_unit_to_bearing_zero_vector(self):
        assert unit_to_bearing((0.0, 0.0)) == 0.0


class TestAngleBetween:
    def test_parallel(self):
        assert angle_between((1, 0), (2, 0)) == pytest.approx(0.0)

    def test_orthogonal(self):
        assert angle_between((1, 0), (0, 3)) == pytest.approx(math.pi / 2)

    def test_opposite(self):
        assert angle_between((1, 0), (-1, 0)) == pytest.approx(math.pi)

    def test_zero_vector_returns_zero(self):
        assert angle_between((0, 0), (1, 0)) == 0.0
        assert angle_between((1, 0), (0, 0)) == 0.0
