"""E2/E3 — Figures 3 and 6: updates generated on one route.

The paper's screenshots show 9 position updates with linear-prediction DR
(Fig. 3) and 3 updates with map-based DR (Fig. 6) for the same freeway
stretch and requested accuracy, i.e. roughly a 3:1 ratio.  This benchmark
reproduces the quantitative content: the update counts of both protocols on
the same (full) freeway route at us = 200 m.
"""

from repro.experiments.figures import route_update_counts
from repro.experiments.report import format_table
from repro.experiments.scenarios import get_scenario
from repro.experiments.visualize import render_route_updates, render_update_summary
from repro.mobility.scenarios import ScenarioName
from repro.sim.config import SimulationConfig

from conftest import run_once


def test_fig3_fig6_route_updates(benchmark, scale):
    results = run_once(benchmark, route_update_counts, scale=scale, accuracy=200.0)
    rows = [
        {
            "protocol": result.protocol_name,
            "updates": result.updates,
            "updates/h": round(result.updates_per_hour, 1),
            "mean error [m]": round(result.metrics.mean_error, 1),
        }
        for result in results.values()
    ]
    print()
    print(format_table(rows, title="Fig. 3 / Fig. 6 equivalent (freeway route, us=200 m)"))

    # ASCII equivalent of the screenshots: the first stretch of the route with
    # the transmitted update positions marked 1..9/*.
    scenario = get_scenario(ScenarioName.FREEWAY, scale=scale)
    horizon = min(len(scenario.sensor_trace), 1200)  # the first ~20 minutes
    for protocol_id, figure_name in (("linear", "Fig. 3"), ("map", "Fig. 6")):
        protocol = SimulationConfig(protocol_id=protocol_id, accuracy=200.0).build_protocol(
            scenario
        )
        updates = []
        for sample in scenario.sensor_trace[:horizon]:
            message = protocol.observe(sample.time, sample.position)
            if message is not None:
                updates.append(message.state.position)
        print()
        print(
            render_update_summary(
                scenario.true_trace[:horizon], updates, f"{figure_name} — {protocol.name}"
            )
        )
        print(
            render_route_updates(
                scenario.roadmap, scenario.true_trace[:horizon], updates, width=100, height=24
            )
        )

    linear = results["linear"]
    mapped = results["map"]
    # The map-based protocol needs clearly fewer updates on the same route
    # (the paper's screenshots show 9 vs 3).
    assert mapped.updates < linear.updates
    assert mapped.updates <= 0.7 * linear.updates
