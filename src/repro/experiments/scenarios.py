"""Scenario construction with caching.

Building a scenario (generating the map, planning the route, simulating the
journey) is by far the most expensive part of an experiment, and every
figure reuses the same scenario for all of its protocol curves.  The cache
here guarantees that repeated calls with identical parameters return the
same object, which also keeps the experiments deterministic.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.mobility.scenarios import Scenario, ScenarioName, build_scenario

_CACHE: Dict[Tuple[str, float, int], Scenario] = {}


def get_scenario(name: ScenarioName | str, scale: float = 1.0, seed: int | None = None) -> Scenario:
    """Return the (cached) scenario *name* at the given *scale*.

    Parameters
    ----------
    name:
        One of ``freeway``, ``interurban``, ``city``, ``walking``.
    scale:
        Route-length scale factor in ``(0, 1]``; 1.0 matches the paper's
        trace lengths.
    seed:
        Scenario seed; ``None`` uses each scenario's default seed.
    """
    key = (ScenarioName(name).value, float(scale), -1 if seed is None else int(seed))
    if key not in _CACHE:
        _CACHE[key] = build_scenario(name, seed=seed, scale=scale)
    return _CACHE[key]


def clear_scenario_cache() -> None:
    """Drop all cached scenarios (used by tests that need fresh randomness)."""
    _CACHE.clear()
