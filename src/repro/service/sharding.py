"""Spatial sharding policies for the location-service tier.

A sharding policy maps positions to shard indices so that a
:class:`~repro.service.facade.LocationService` can partition its tracked
objects across several :class:`~repro.service.server.LocationServer` shards.
Policies are pluggable; the default :class:`GridHashPolicy` hashes a coarse
spatial grid cell onto the shard ring, which spreads load evenly without
requiring any knowledge of the covered area.

Every mapping is deterministic (no process-randomised hashes), so shard
assignments — and with them per-shard load counters and query routes — are
reproducible across runs and across processes.

:class:`RebalancePolicy` makes the tier *load-adaptive*: when the per-shard
object-count skew (the ``service.shard.skew`` gauge, max/mean) exceeds a
threshold, it re-homes the hottest routing cells of the hottest shard onto
the least-loaded shard via :meth:`GridHashPolicy.override_cell` and sweeps
the affected records across with
:meth:`~repro.service.facade.LocationService.rebalance`.  Placement never
affects query answers — handoffs move records wholesale — so rebalancing
is free to run under live traffic.
"""

from __future__ import annotations

import abc
import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.vec import Vec2, as_vec

#: Cell counts above this threshold make per-cell shard routing pointless:
#: a hash-distributed box that large touches (nearly) every shard anyway.
_DENSE_BOX_CELLS = 64


class ShardingPolicy(abc.ABC):
    """Maps object positions (and ids) to shard indices in ``[0, n_shards)``."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.n_shards = int(n_shards)

    @abc.abstractmethod
    def shard_for_point(self, point: Vec2) -> int:
        """The shard responsible for an object predicted at *point*."""

    def shard_for_id(self, object_id: str) -> int:
        """Stable fallback shard for objects that have not reported yet.

        Uses CRC32 rather than :func:`hash` so the assignment is identical
        in every process (``PYTHONHASHSEED`` randomises string hashes).
        """
        return zlib.crc32(object_id.encode("utf-8")) % self.n_shards

    @abc.abstractmethod
    def shards_for_box(self, box: BoundingBox) -> List[int]:
        """Every shard that may hold an object positioned inside *box*.

        The result may be a superset of the shards actually holding matching
        objects (routing is conservative), but must never miss one.
        """

    def all_shards(self) -> List[int]:
        """All shard indices (the trivially correct routing answer)."""
        return list(range(self.n_shards))


class GridHashPolicy(ShardingPolicy):
    """Hash a coarse spatial grid cell onto the shard ring.

    Parameters
    ----------
    n_shards:
        Number of shards to spread objects over.
    region_size:
        Edge length of a routing cell in metres.  Cells should be comparable
        to (or larger than) typical query extents so that a range query only
        touches a few shards.
    """

    def __init__(self, n_shards: int, region_size: float = 2000.0):
        super().__init__(n_shards)
        if region_size <= 0:
            raise ValueError("region_size must be positive")
        self.region_size = float(region_size)
        #: Per-cell overrides installed by :class:`RebalancePolicy` (or by
        #: hand): routing cells whose objects were re-homed away from their
        #: hash shard.  Deterministic like everything else — the table is
        #: plain state that pickles across worker processes.
        self.overrides: Dict[Tuple[int, int], int] = {}

    def cell_for_point(self, point: Vec2) -> tuple[int, int]:
        """The routing cell containing *point*."""
        p = as_vec(point)
        return (
            int(math.floor(p[0] / self.region_size)),
            int(math.floor(p[1] / self.region_size)),
        )

    def shard_for_cell(self, cell: tuple[int, int]) -> int:
        """Deterministic spatial hash of a routing cell onto the shard ring."""
        override = self.overrides.get(cell)
        if override is not None:
            return override
        cx, cy = cell
        # Classic two-prime spatial hash; Python's % keeps the result
        # non-negative for negative cell coordinates.
        return ((cx * 73856093) ^ (cy * 19349663)) % self.n_shards

    def hash_shard_for_cell(self, cell: tuple[int, int]) -> int:
        """The un-overridden hash assignment of *cell* (diagnostics)."""
        cx, cy = cell
        return ((cx * 73856093) ^ (cy * 19349663)) % self.n_shards

    def override_cell(self, cell: tuple[int, int], shard: int) -> int:
        """Pin *cell* to *shard*; returns the previous effective shard.

        Overriding back to the cell's natural hash shard removes the table
        entry instead of storing a redundant one.
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.n_shards})")
        cell = (int(cell[0]), int(cell[1]))
        previous = self.shard_for_cell(cell)
        if shard == self.hash_shard_for_cell(cell):
            self.overrides.pop(cell, None)
        else:
            self.overrides[cell] = int(shard)
        return previous

    def clear_overrides(self) -> None:
        """Drop every override (back to the pure hash mapping)."""
        self.overrides.clear()

    def shard_for_point(self, point: Vec2) -> int:
        return self.shard_for_cell(self.cell_for_point(point))

    def shards_for_box(self, box: BoundingBox) -> List[int]:
        if self.n_shards == 1:
            return [0]
        min_cx, min_cy = self.cell_for_point((box.min_x, box.min_y))
        max_cx, max_cy = self.cell_for_point((box.max_x, box.max_y))
        n_cells = (max_cx - min_cx + 1) * (max_cy - min_cy + 1)
        if n_cells >= max(_DENSE_BOX_CELLS, 8 * self.n_shards):
            return self.all_shards()
        shards = set()
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                shards.add(self.shard_for_cell((cx, cy)))
                if len(shards) == self.n_shards:
                    return self.all_shards()
        return sorted(shards)


# --------------------------------------------------------------------- #
# load-adaptive rebalancing
# --------------------------------------------------------------------- #
def shard_skew(object_counts: List[int]) -> float:
    """Per-shard object-count skew: max/mean (1.0 = perfectly balanced)."""
    if not object_counts:
        return 0.0
    mean = sum(object_counts) / len(object_counts)
    return (max(object_counts) / mean) if mean else 0.0


@dataclass(frozen=True)
class RebalanceReport:
    """What one :meth:`RebalancePolicy.maybe_rebalance` pass did."""

    time: float
    hot_shard: int
    skew_before: float
    skew_after: float
    handoffs: int
    #: ``(cell, from_shard, to_shard)`` per re-homed routing cell.
    moves: List[Tuple[Tuple[int, int], int, int]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "hot_shard": self.hot_shard,
            "skew_before": self.skew_before,
            "skew_after": self.skew_after,
            "cells_moved": len(self.moves),
            "handoffs": self.handoffs,
            "moves": [
                {"cell": list(cell), "from": src, "to": dst}
                for cell, src, dst in self.moves
            ],
        }


class RebalancePolicy:
    """Threshold-triggered re-homing of hot routing cells.

    Watches the per-shard object-count skew (max/mean — the same number the
    obs layer exports as the ``service.shard.skew`` gauge) and, when it
    exceeds *skew_threshold*, moves the hottest shard's most crowded routing
    cells onto the least-loaded shard by installing
    :meth:`GridHashPolicy.override_cell` entries and sweeping the affected
    records across with the service's ``rebalance``.  Every step is
    deterministic: ties are broken by cell coordinates and shard index.

    Placement changes never change query answers (handoffs move records
    wholesale and queries route through the same policy that placed them),
    so the live server can run this between ingest batches under traffic.

    Parameters
    ----------
    skew_threshold:
        Trigger when ``max/mean`` object count exceeds this (> 1.0).
    max_cells_per_pass:
        At most this many routing cells are re-homed per pass — rebalancing
        converges over several passes instead of stalling the writer.
    min_objects:
        Skip while the service tracks fewer objects than this (skew over a
        handful of objects is noise).
    """

    def __init__(
        self,
        skew_threshold: float = 1.5,
        max_cells_per_pass: int = 4,
        min_objects: int = 64,
    ):
        if skew_threshold <= 1.0:
            raise ValueError("skew_threshold must be > 1.0 (1.0 = balanced)")
        if max_cells_per_pass < 1:
            raise ValueError("max_cells_per_pass must be at least 1")
        self.skew_threshold = float(skew_threshold)
        self.max_cells_per_pass = int(max_cells_per_pass)
        self.min_objects = int(min_objects)
        #: Cumulative diagnostics.
        self.checks = 0
        self.passes = 0
        self.cells_moved = 0
        self.objects_moved = 0
        self.last_report: Optional[RebalanceReport] = None

    def maybe_rebalance(self, service, time: float) -> Optional[RebalanceReport]:
        """Run one rebalance pass against *service* if the skew warrants it.

        *service* is a :class:`~repro.service.facade.LocationService` (duck
        typed to avoid the circular import); its policy must support cell
        overrides (:class:`GridHashPolicy` does).  Returns a report when a
        pass ran, else ``None``.
        """
        self.checks += 1
        policy = service.policy
        if service.n_shards <= 1 or not hasattr(policy, "override_cell"):
            return None
        counts = [len(shard.object_ids()) for shard in service.shards]
        total = sum(counts)
        if total < self.min_objects:
            return None
        skew_before = shard_skew(counts)
        if skew_before <= self.skew_threshold:
            return None
        hot = counts.index(max(counts))
        positions = service.shards[hot].all_positions(time)
        if not positions:
            return None
        pts = np.asarray(list(positions.values()), dtype=float)
        cells = np.floor(pts / policy.region_size).astype(np.int64)
        unique, cell_counts = np.unique(cells, axis=0, return_counts=True)
        # Hottest cells first; coordinate order breaks count ties.
        order = np.lexsort((unique[:, 1], unique[:, 0], -cell_counts))
        projected = list(counts)
        mean = total / len(counts)
        moves: List[Tuple[Tuple[int, int], int, int]] = []
        for row in order:
            if len(moves) >= self.max_cells_per_pass:
                break
            if projected[hot] / mean <= self.skew_threshold:
                break
            count = int(cell_counts[row])
            target = min(
                (s for s in range(service.n_shards) if s != hot),
                key=lambda s: (projected[s], s),
            )
            # Only move a cell that actually narrows the hot/target gap;
            # smaller cells later in the order may still fit.
            if count >= projected[hot] - projected[target]:
                continue
            cell = (int(unique[row, 0]), int(unique[row, 1]))
            policy.override_cell(cell, target)
            projected[hot] -= count
            projected[target] += count
            moves.append((cell, hot, target))
        if not moves:
            return None
        handoffs = service.rebalance(time)
        counts_after = [len(shard.object_ids()) for shard in service.shards]
        report = RebalanceReport(
            time=float(time),
            hot_shard=hot,
            skew_before=skew_before,
            skew_after=shard_skew(counts_after),
            handoffs=handoffs,
            moves=moves,
        )
        self.passes += 1
        self.cells_moved += len(moves)
        self.objects_moved += handoffs
        self.last_report = report
        return report
