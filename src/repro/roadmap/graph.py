"""The :class:`RoadMap` container.

A road map is a directed multigraph of intersections and links plus a
spatial index over the link geometries.  The map-based protocol needs three
queries from it:

* outgoing links of an intersection (forward-tracking at link ends),
* incoming links of an intersection (backward-tracking after a wrong match),
* the nearest link(s) to an arbitrary position (initial matching and
  re-acquisition after the object left the mapped network).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.vec import Vec2, as_vec
from repro.roadmap.elements import Intersection, Link
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem, SpatialIndex


class RoadMap:
    """An immutable road network with spatial lookup.

    Instances are normally created through
    :class:`repro.roadmap.builder.RoadMapBuilder` or one of the generators in
    :mod:`repro.roadmap.generators`.

    Parameters
    ----------
    intersections:
        The nodes of the network.
    links:
        The directed links.  Every link must reference existing
        intersections.  Two-way roads are represented by two links, one per
        direction, exactly like commercial navigation maps do.
    index_cell_size:
        Cell size of the spatial index built over link geometry.
    metadata:
        Optional provenance of the map (imported maps record their source
        extract, geodesic origin and ingest report here).  Round-tripped by
        :mod:`repro.roadmap.io`.
    """

    def __init__(
        self,
        intersections: Iterable[Intersection],
        links: Iterable[Link],
        index_cell_size: float = 250.0,
        metadata: Optional[Dict] = None,
    ):
        self._metadata: Dict = dict(metadata) if metadata else {}
        self._intersections: Dict[int, Intersection] = {}
        for node in intersections:
            if node.id in self._intersections:
                raise ValueError(f"duplicate intersection id {node.id}")
            self._intersections[node.id] = node

        self._links: Dict[int, Link] = {}
        self._outgoing: Dict[int, List[int]] = {nid: [] for nid in self._intersections}
        self._incoming: Dict[int, List[int]] = {nid: [] for nid in self._intersections}
        for link in links:
            if link.id in self._links:
                raise ValueError(f"duplicate link id {link.id}")
            if link.from_node not in self._intersections:
                raise ValueError(f"link {link.id}: unknown from_node {link.from_node}")
            if link.to_node not in self._intersections:
                raise ValueError(f"link {link.id}: unknown to_node {link.to_node}")
            self._links[link.id] = link
            self._outgoing[link.from_node].append(link.id)
            self._incoming[link.to_node].append(link.id)

        # The spatial index is built lazily on the first spatial query:
        # loading a compiled map from cache (and route planning generally)
        # never touches it, and eager construction dominated cache-load
        # time on large maps.
        self._index_cell_size = index_cell_size
        self._lazy_index: Optional[SpatialIndex[int]] = None

    # ------------------------------------------------------------------ #
    # element access
    # ------------------------------------------------------------------ #
    @property
    def intersections(self) -> Dict[int, Intersection]:
        """Mapping of intersection id to :class:`Intersection`."""
        return dict(self._intersections)

    @property
    def links(self) -> Dict[int, Link]:
        """Mapping of link id to :class:`Link`."""
        return dict(self._links)

    @property
    def metadata(self) -> Dict:
        """Provenance metadata (empty for synthetic maps)."""
        return self._metadata

    def intersection(self, node_id: int) -> Intersection:
        """Look up an intersection by id."""
        return self._intersections[node_id]

    def link(self, link_id: int) -> Link:
        """Look up a link by id."""
        return self._links[link_id]

    def has_link(self, link_id: int) -> bool:
        """Whether a link with the given id exists."""
        return link_id in self._links

    def num_intersections(self) -> int:
        """Number of intersections."""
        return len(self._intersections)

    def num_links(self) -> int:
        """Number of directed links."""
        return len(self._links)

    def total_length(self) -> float:
        """Sum of all link lengths in metres (counting each direction)."""
        return sum(l.length for l in self._links.values())

    def bounds(self) -> BoundingBox:
        """Bounding box of the whole network."""
        boxes = [link.bounds() for link in self._links.values()]
        if not boxes:
            positions = [n.position for n in self._intersections.values()]
            return BoundingBox.from_points(positions)
        box = boxes[0]
        for b in boxes[1:]:
            box = box.union(b)
        return box

    # ------------------------------------------------------------------ #
    # topology queries
    # ------------------------------------------------------------------ #
    def outgoing_links(self, node_id: int) -> List[Link]:
        """Links leaving intersection *node_id*."""
        return [self._links[lid] for lid in self._outgoing.get(node_id, ())]

    def incoming_links(self, node_id: int) -> List[Link]:
        """Links arriving at intersection *node_id*."""
        return [self._links[lid] for lid in self._incoming.get(node_id, ())]

    def successors(self, link: Link) -> List[Link]:
        """Links that can be followed after traversing *link*.

        The reverse of *link* (an immediate U-turn) is excluded, matching the
        behaviour expected of the prediction function: a vehicle passing an
        intersection does not normally turn back on itself.
        """
        out = []
        for candidate in self.outgoing_links(link.to_node):
            if candidate.to_node == link.from_node and candidate.from_node == link.to_node:
                continue
            out.append(candidate)
        return out

    def predecessors(self, link: Link) -> List[Link]:
        """Links that can precede *link* (excluding its own reverse)."""
        out = []
        for candidate in self.incoming_links(link.from_node):
            if candidate.from_node == link.to_node and candidate.to_node == link.from_node:
                continue
            out.append(candidate)
        return out

    def reverse_link(self, link: Link) -> Optional[Link]:
        """The opposite-direction twin of *link*, if the road is two-way."""
        for candidate in self.outgoing_links(link.to_node):
            if candidate.to_node == link.from_node:
                return candidate
        return None

    def degree(self, node_id: int) -> int:
        """Number of outgoing links of an intersection."""
        return len(self._outgoing.get(node_id, ()))

    # ------------------------------------------------------------------ #
    # spatial queries
    # ------------------------------------------------------------------ #
    @property
    def _index(self) -> SpatialIndex[int]:
        """The spatial index over link geometry, built on first use."""
        index = self._lazy_index
        if index is None:
            index = GridIndex(cell_size=self._index_cell_size)
            for link in self._links.values():
                index.insert(
                    IndexedItem(
                        key=link.id, bounds=link.bounds(), distance=link.distance_to
                    )
                )
            self._lazy_index = index
        return index

    def nearest_link(
        self, point: Vec2, max_distance: Optional[float] = None
    ) -> Optional[Tuple[Link, float]]:
        """The link closest to *point*, optionally within *max_distance* metres.

        This is the "spatial index for the map information" query the paper's
        matcher performs on initialisation and when re-acquiring the map.
        """
        result = self._index.nearest(point, max_distance=max_distance)
        if result is None:
            return None
        item, dist = result
        return self._links[item.key], dist

    def links_near(self, point: Vec2, radius: float) -> List[Tuple[Link, float]]:
        """All links within *radius* metres of *point*, sorted by distance."""
        items = self._index.query_radius(point, radius)
        p = as_vec(point)
        scored = [(self._links[item.key], item.distance(p)) for item in items]
        scored.sort(key=lambda pair: pair[1])
        return scored

    def links_in_box(self, box: BoundingBox) -> List[Link]:
        """Links whose bounding boxes intersect *box*."""
        return [self._links[item.key] for item in self._index.query_bbox(box)]

    def nearest_intersection(self, point: Vec2) -> Tuple[Intersection, float]:
        """The intersection closest to *point* (linear scan; nodes are few)."""
        p = as_vec(point)
        best_node = None
        best_dist = float("inf")
        for node in self._intersections.values():
            d = node.distance_to(p)
            if d < best_dist:
                best_dist = d
                best_node = node
        if best_node is None:
            raise ValueError("the road map has no intersections")
        return best_node, best_dist

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.DiGraph:
        """Export the topology as a ``networkx.DiGraph``.

        Nodes are intersection ids with a ``position`` attribute; edges carry
        ``link_id``, ``length``, ``travel_time`` and ``road_class`` attributes
        so that standard graph algorithms (shortest paths for the route
        planner, connectivity checks in the tests) can run directly on it.
        """
        graph = nx.DiGraph()
        for node in self._intersections.values():
            graph.add_node(node.id, position=tuple(node.position))
        for link in self._links.values():
            graph.add_edge(
                link.from_node,
                link.to_node,
                link_id=link.id,
                length=link.length,
                travel_time=link.travel_time(),
                road_class=link.road_class.value,
            )
        return graph

    def statistics(self) -> dict:
        """Summary statistics used in reports and examples."""
        lengths = [l.length for l in self._links.values()]
        degrees = [self.degree(nid) for nid in self._intersections]
        return {
            "intersections": self.num_intersections(),
            "links": self.num_links(),
            "total_length_km": self.total_length() / 1000.0,
            "mean_link_length_m": float(np.mean(lengths)) if lengths else 0.0,
            "mean_out_degree": float(np.mean(degrees)) if degrees else 0.0,
            "bounds": self.bounds().as_tuple(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoadMap({self.num_intersections()} intersections, "
            f"{self.num_links()} links, {self.total_length() / 1000.0:.1f} km)"
        )
