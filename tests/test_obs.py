"""The unified observability layer: metrics, tracing, provenance.

What the obs package promises, pinned:

* **Deterministic registry** — counters/gauges/histograms/latencies whose
  ``merge()`` is commutative and associative, so per-worker registries
  from a ``processes=N`` fleet fold back bit-identically; the
  deterministic snapshot of a ``processes=4`` run equals ``processes=1``.
* **Nearest-rank percentiles** — one implementation
  (:func:`repro.obs.metrics.nearest_rank`) shared by the live tier and
  the benchmarks, property-tested against :mod:`statistics`.
* **No-op when absent, inert when present** — an attached
  :class:`~repro.obs.Observability` bundle changes no result bit on any
  canonical scenario.
* **Chrome-trace export** — the tracer's JSON validates as a
  ``trace_event`` document (Perfetto-openable), worker spans adopt under
  their own pid, and the flight recorder dumps readable kernel events.
* **Provenance** — manifests carry the git SHA and a canonical config
  hash, and sweep artifacts embed one at the top level.
* **Live tier** — the ``metrics`` wire op answers with and without a
  bundle, and shed-load rejections log a warning.
"""

from __future__ import annotations

import asyncio
import json
import logging
import statistics

import numpy as np
import pytest

from repro.experiments.library import FleetMix, fleet_lanes
from repro.obs import Observability, build_manifest, config_hash, git_revision
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyRecorder,
    MetricsRegistry,
    nearest_rank,
)
from repro.obs.trace import FlightRecorder, SpanTracer, validate_chrome_trace
from repro.service.facade import LocationService
from repro.service.live import stats as live_stats
from repro.service.live.server import LiveLocationServer
from repro.sim.fleet import FleetSimulation
from repro.sim.runner import ScenarioSpec, SweepRunner, read_artifact


# --------------------------------------------------------------------------- #
# nearest-rank percentiles
# --------------------------------------------------------------------------- #
class TestNearestRank:
    def test_p50_is_median_low(self):
        for n in (1, 2, 3, 7, 10, 101):
            ordered = sorted(float(v) for v in range(n))
            assert nearest_rank(ordered, 50.0) == statistics.median_low(ordered)

    def test_result_is_always_a_sample(self):
        ordered = sorted([0.3, 1.7, 2.2, 9.9, 4.1, 4.1])
        for q in (1, 10, 25, 50, 75, 90, 99, 100):
            assert nearest_rank(ordered, float(q)) in ordered

    def test_monotone_in_q_and_brackets_statistics_quantiles(self):
        rng = np.random.default_rng(7)
        ordered = sorted(rng.uniform(0.0, 100.0, size=37).tolist())
        qs = [5.0, 25.0, 50.0, 75.0, 95.0, 100.0]
        ranks = [nearest_rank(ordered, q) for q in qs]
        assert ranks == sorted(ranks)
        # The interpolating quantiles never land outside neighbouring
        # samples, so nearest-rank can differ by at most one sample gap.
        cuts = statistics.quantiles(ordered, n=4, method="inclusive")
        gap = max(b - a for a, b in zip(ordered, ordered[1:]))
        for interpolated, q in zip(cuts, (25.0, 50.0, 75.0)):
            assert abs(nearest_rank(ordered, q) - interpolated) <= gap

    def test_p100_is_max_and_bounds_are_enforced(self):
        ordered = [1.0, 2.0, 3.0]
        assert nearest_rank(ordered, 100.0) == 3.0
        assert nearest_rank([], 50.0) == 0.0
        for bad in (0.0, -1.0, 100.1):
            with pytest.raises(ValueError):
                nearest_rank(ordered, bad)


class TestStatsReExport:
    def test_live_stats_is_the_shared_implementation(self):
        assert live_stats.LatencyRecorder is LatencyRecorder
        assert live_stats.nearest_rank is nearest_rank


# --------------------------------------------------------------------------- #
# instruments and the registry
# --------------------------------------------------------------------------- #
class TestInstruments:
    def test_counter_inc_and_merge(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(4)
        b.inc(2)
        a.merge(b)
        assert a.value == 7

    def test_gauge_modes(self):
        high = Gauge(mode="max")
        for v in (3.0, 9.0, 5.0):
            high.set(v)
        assert high.value == 9.0
        low = Gauge(mode="min")
        for v in (3.0, 9.0, 5.0):
            low.set(v)
        assert low.value == 3.0
        total = Gauge(mode="sum")
        for v in (3.0, 9.0, 5.0):
            total.set(v)
        assert total.value == 17.0
        with pytest.raises(ValueError):
            Gauge(mode="last")

    def test_unset_gauge_merge_is_a_no_op(self):
        a = Gauge(mode="max")
        a.set(5.0)
        a.merge(Gauge(mode="max"))
        assert a.value == 5.0

    def test_histogram_buckets_and_merge(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 3.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == [[1.0, 2], [10.0, 1], ["+inf", 1]]
        other = Histogram(bounds=(1.0, 10.0))
        other.observe(2.0)
        h.merge(other)
        assert h.snapshot()["buckets"] == [[1.0, 2], [10.0, 2], ["+inf", 1]]
        with pytest.raises(ValueError):
            h.merge(Histogram(bounds=(1.0, 2.0)))

    def test_latency_summary_is_merge_order_invariant(self):
        samples_a = [0.004, 0.001, 0.009]
        samples_b = [0.002, 0.030]
        ab = LatencyRecorder(samples_a)
        ab.merge(LatencyRecorder(samples_b))
        ba = LatencyRecorder(samples_b)
        ba.merge(LatencyRecorder(samples_a))
        assert ab.summary() == ba.summary()
        assert set(ab.summary()) == {
            "count", "avg_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms",
        }

    def test_registry_rejects_kind_clashes(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


def _registry(spec):
    """A registry from ``{name: value}`` (counters) plus one gauge + latency."""
    registry = MetricsRegistry()
    for name, value in spec.items():
        registry.counter(name).inc(value)
    registry.gauge("g", mode="max").set(max(spec.values(), default=0))
    lat = registry.latency("lat")
    for value in spec.values():
        lat.record(value / 1000.0)
    return registry


class TestRegistryMerge:
    A = {"a": 3, "b": 5}
    B = {"b": 7, "c": 1}
    C = {"a": 2, "c": 9, "d": 4}

    def test_commutative(self):
        ab = _registry(self.A).merge(_registry(self.B))
        ba = _registry(self.B).merge(_registry(self.A))
        assert ab.snapshot() == ba.snapshot()

    def test_associative(self):
        left = _registry(self.A).merge(_registry(self.B)).merge(_registry(self.C))
        right = _registry(self.A).merge(
            _registry(self.B).merge(_registry(self.C))
        )
        assert left.snapshot() == right.snapshot()

    def test_merge_copies_unseen_instruments(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        theirs.counter("only.theirs").inc(2)
        ours.merge(theirs)
        theirs.counter("only.theirs").inc(40)
        assert ours.snapshot()["only.theirs"]["value"] == 2

    def test_prometheus_exposition(self):
        registry = _registry(self.A)
        registry.histogram("hist", bounds=(1.0, 2.0)).observe(1.5)
        text = registry.to_prometheus()
        assert "# TYPE repro_a counter" in text
        assert 'repro_hist_bucket{le="2"' in text or 'le="2.0"' in text
        assert "repro_lat{quantile" in text


# --------------------------------------------------------------------------- #
# fleet integration: bit-identity and cross-worker determinism
# --------------------------------------------------------------------------- #
def _library_fleet(mix_text, obs=None, processes=1, shards=1, scale=0.1, seed=11):
    lanes = fleet_lanes([FleetMix.parse(mix_text)], scale=scale, seed=seed)
    server = LocationService(n_shards=shards) if shards > 1 else None
    return FleetSimulation(
        lanes,
        server=server,
        kernel="event",
        handoff_interval=60.0 if shards > 1 else None,
        processes=processes,
        obs=obs,
    )


def _rows_and_errors(result):
    rows = {oid: r.as_dict() for oid, r in result.results.items()}
    errors = {oid: r.metrics.errors for oid, r in result.results.items()}
    return rows, errors


def _assert_identical(result_a, result_b):
    rows_a, err_a = _rows_and_errors(result_a)
    rows_b, err_b = _rows_and_errors(result_b)
    assert list(rows_a) == list(rows_b)
    assert rows_a == rows_b
    for oid in rows_a:
        assert np.array_equal(err_a[oid], err_b[oid])


class TestFleetObservability:
    @pytest.mark.parametrize(
        "mix_text",
        [
            "freeway:linear:100:3",
            "interurban:linear:100:3",
            "city:linear:100:3",
            "walking:linear:50:3",
        ],
    )
    def test_obs_changes_no_result_bit(self, mix_text):
        plain = _library_fleet(mix_text).run()
        observed_bundle = Observability()
        observed = _library_fleet(mix_text, obs=observed_bundle).run()
        _assert_identical(plain, observed)
        # ... and the bundle actually saw the run.
        snapshot = observed_bundle.registry.snapshot()
        assert snapshot["sim.lanes"]["value"] == 3
        assert snapshot["sim.updates_sent"]["value"] == sum(
            r.updates for r in observed.results.values()
        )

    def test_multiprocess_deterministic_metrics_match_single(self):
        obs_1 = Observability()
        result_1 = _library_fleet(
            "city:linear:100:6", obs=obs_1, processes=1, shards=4
        ).run()
        obs_4 = Observability()
        result_4 = _library_fleet(
            "city:linear:100:6", obs=obs_4, processes=4, shards=4
        ).run()
        _assert_identical(result_1, result_4)
        assert result_1.service_stats == result_4.service_stats
        det_1 = obs_1.registry.snapshot(deterministic_only=True)
        det_4 = obs_4.registry.snapshot(deterministic_only=True)
        assert det_1 == det_4
        # The deterministic view is non-trivial: kernel event counts,
        # lane aggregates and the published service stats all survive.
        assert "kernel.events.sample" in det_1
        assert "service.handoffs" in det_1
        assert any(name.startswith("service.shard.") for name in det_1)

    def test_worker_spans_are_adopted_under_their_own_pid(self):
        obs = Observability()
        _library_fleet("city:linear:100:6", obs=obs, processes=2, shards=4).run()
        pids = {event["pid"] for event in obs.tracer.events() if event["ph"] == "X"}
        assert len(pids) >= 2
        assert validate_chrome_trace(obs.tracer.to_chrome()) == []


# --------------------------------------------------------------------------- #
# tracing and the flight recorder
# --------------------------------------------------------------------------- #
class TestTracing:
    def test_span_nesting_and_chrome_export(self):
        tracer = SpanTracer()
        with tracer.span("outer", cat="test", args={"k": 1}):
            with tracer.span("inner", cat="test"):
                pass
        tracer.instant("marker", cat="test")
        payload = tracer.to_chrome()
        assert validate_chrome_trace(payload) == []
        names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
        # Spans close inner-first.
        assert names == ["inner", "outer"]
        durations = [e["dur"] for e in payload["traceEvents"] if e["ph"] == "X"]
        assert all(d >= 0 for d in durations)

    def test_validate_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "Q"}]}) != []

    def test_flight_recorder_is_bounded_and_readable(self):
        flight = FlightRecorder(4)
        for seq in range(10):
            flight.note(float(seq), 0, seq)
        dumped = flight.dump()
        assert len(dumped) == 4
        assert [d["seq"] for d in dumped] == [6, 7, 8, 9]
        assert dumped[0]["kind"] == "sample"

    def test_dump_flight_logs_the_ring(self, caplog):
        obs = Observability(flight_capacity=8)
        obs.flight.note(1.0, 1, 42)
        with caplog.at_level(logging.ERROR, logger="repro.obs"):
            count = obs.dump_flight(reason="unit test")
        assert count == 1
        assert "flight recorder" in caplog.text
        assert "timer" in caplog.text


# --------------------------------------------------------------------------- #
# provenance
# --------------------------------------------------------------------------- #
class TestProvenance:
    def test_git_revision_in_this_repo(self):
        revision = git_revision()
        assert revision["sha"] is None or len(revision["sha"]) == 40

    def test_config_hash_is_canonical(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_build_manifest_fields(self):
        manifest = build_manifest(seed=7, config={"x": 1}, timings={"wall": 1.25})
        assert manifest["schema"] == 1
        assert manifest["seed"] == 7
        assert manifest["config_hash"] == config_hash({"x": 1})
        assert manifest["timings"] == {"wall": 1.25}
        assert isinstance(manifest["python"], str)

    def test_sweep_artifacts_carry_provenance(self, tmp_path):
        runner = SweepRunner()
        points = runner.run_config_sweep(
            ScenarioSpec(name="freeway", scale=0.05, seed=0), "linear", [100.0]
        )
        written = runner.write_artifacts(
            points, "obs_prov", out_dir=str(tmp_path), metadata={"scale": 0.05}
        )
        payload = json.loads((tmp_path / "obs_prov.json").read_text())
        assert payload["metadata"] == {"scale": 0.05}
        provenance = payload["provenance"]
        assert "config_hash" in provenance and "git" in provenance
        # read_artifact still round-trips (provenance rides along).
        parsed = read_artifact(written["json"])
        assert parsed["points"] == payload["points"]


# --------------------------------------------------------------------------- #
# the observability bundle end-to-end
# --------------------------------------------------------------------------- #
class TestObservabilityWrite:
    def test_write_produces_valid_artifacts(self, tmp_path):
        obs = Observability()
        obs.counter("demo").inc(3)
        with obs.span("phase", cat="test"):
            pass
        paths = obs.write(tmp_path, seed=5, config={"kind": "unit"})
        assert sorted(paths) == ["manifest", "metrics", "trace"]
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["metrics"]["demo"]["value"] == 3
        assert "prometheus" in metrics
        trace = json.loads((tmp_path / "trace.json").read_text())
        assert validate_chrome_trace(trace) == []
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["seed"] == 5


# --------------------------------------------------------------------------- #
# live server: metrics op and shed-load logging
# --------------------------------------------------------------------------- #
class TestLiveServerObservability:
    def test_metrics_op_without_a_bundle(self):
        server = LiveLocationServer()
        server.op_counts["ping"] = 3
        response = server._handle_metrics()
        assert response["ok"] and response["enabled"] is False
        snapshot = response["metrics"]
        assert snapshot["live.server.op_count.ping"]["value"] == 3
        assert "repro_live_server_enqueued_seq" in response["prometheus"]

    def test_metrics_op_with_a_bundle_serves_the_shared_registry(self):
        obs = Observability()
        server = LiveLocationServer(obs=obs)
        obs.counter("live.ingest.accepted", deterministic=False).inc(4)
        response = server._handle_metrics()
        assert response["enabled"] is True
        assert response["metrics"]["live.ingest.accepted"]["value"] == 4
        # The bundle is shared with the facade.
        assert server.service.obs is obs

    def test_shed_load_logs_a_warning_and_counts(self, caplog):
        async def go():
            obs = Observability()
            server = LiveLocationServer(ingest_queue_size=1, obs=obs)
            server.service.register_object("o1")
            server._queue = asyncio.Queue(maxsize=1)
            await server._queue.put("occupied")
            request = {"op": "ingest", "t": 0.0, "updates": [], "wait": False}
            with caplog.at_level(logging.WARNING, logger="repro.service.live.server"):
                response = await server._handle_ingest(request)
            assert response["rejected"] is True
            assert "queue full" in caplog.text
            assert obs.registry.snapshot()["live.ingest.rejected"]["value"] == 1

        asyncio.run(go())


# --------------------------------------------------------------------------- #
# cache corruption logs a warning (no longer silent)
# --------------------------------------------------------------------------- #
class TestCacheWarnings:
    def test_corrupt_cache_entry_warns_and_rebuilds(self, tmp_path, caplog):
        from repro.ingest.cache import _from_cache_file

        entry = tmp_path / "broken.json"
        entry.write_text("{not json", encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro.ingest.cache"):
            assert _from_cache_file(entry, index_cell_size=250.0) is None
        assert "corrupt compiled-map cache entry" in caplog.text


# --------------------------------------------------------------------------- #
# CLI: --obs-dir and obs-report
# --------------------------------------------------------------------------- #
class TestObsCli:
    def test_fleet_obs_dir_then_obs_report(self, tmp_path, capsys):
        from repro.cli import main

        obs_dir = tmp_path / "obs"
        code = main([
            "fleet",
            "--mix", "freeway:linear:200:2",
            "--scale", "0.05",
            "--kernel", "event",
            "--obs-dir", str(obs_dir),
        ])
        assert code == 0
        for name in ("metrics.json", "trace.json", "manifest.json"):
            assert (obs_dir / name).exists()
        trace = json.loads((obs_dir / "trace.json").read_text())
        assert validate_chrome_trace(trace) == []
        capsys.readouterr()
        assert main(["obs-report", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "Provenance" in out and "Metrics" in out and "valid" in out

    def test_obs_report_rejects_an_empty_directory(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["obs-report", str(tmp_path)]) == 2
