"""Integration tests: the qualitative claims of the paper on small scenarios.

These tests run the full pipeline (scenario -> noisy trace -> protocol ->
channel -> server -> metrics) and assert the *shape* of the paper's results:
the ordering of the protocols, the direction of the trends and the accuracy
guarantee.  They use reduced-scale scenarios so the whole suite stays fast;
the benchmarks run the same experiments at full scale.
"""

import pytest

from repro.experiments.figures import figure_for_scenario
from repro.mapmatching.offline import match_trace, matching_accuracy
from repro.mapmatching.matcher import MatcherConfig
from repro.protocols.mapbased import MapBasedConfig, MapBasedProtocol
from repro.roadmap.history import HistoryMapLearner
from repro.sim.config import SimulationConfig
from repro.sim.engine import ProtocolSimulation


def run_protocol(scenario, protocol_id, accuracy):
    protocol = SimulationConfig(protocol_id=protocol_id, accuracy=accuracy).build_protocol(
        scenario
    )
    return ProtocolSimulation(
        protocol=protocol,
        sensor_trace=scenario.sensor_trace,
        truth_trace=scenario.true_trace,
    ).run()


class TestProtocolOrdering:
    """Dead reckoning beats plain reporting; the map beats the line (Figs. 7-9)."""

    @pytest.mark.parametrize("accuracy", [100.0, 250.0])
    def test_freeway_ordering(self, tiny_freeway_scenario, accuracy):
        distance = run_protocol(tiny_freeway_scenario, "distance", accuracy)
        linear = run_protocol(tiny_freeway_scenario, "linear", accuracy)
        mapped = run_protocol(tiny_freeway_scenario, "map", accuracy)
        assert linear.updates < distance.updates
        assert mapped.updates < linear.updates

    def test_interurban_ordering(self, tiny_interurban_scenario):
        distance = run_protocol(tiny_interurban_scenario, "distance", 100.0)
        linear = run_protocol(tiny_interurban_scenario, "linear", 100.0)
        mapped = run_protocol(tiny_interurban_scenario, "map", 100.0)
        assert linear.updates < distance.updates
        assert mapped.updates <= linear.updates

    def test_city_dead_reckoning_beats_reporting(self, tiny_city_scenario):
        distance = run_protocol(tiny_city_scenario, "distance", 100.0)
        linear = run_protocol(tiny_city_scenario, "linear", 100.0)
        mapped = run_protocol(tiny_city_scenario, "map", 100.0)
        assert linear.updates < distance.updates
        # In city traffic the map helps less (frequent intersections); the
        # paper still shows it at or below the linear curve.
        assert mapped.updates <= linear.updates * 1.25

    def test_walking_dead_reckoning_not_worse_at_small_us(self, tiny_walking_scenario):
        distance = run_protocol(tiny_walking_scenario, "distance", 50.0)
        linear = run_protocol(tiny_walking_scenario, "linear", 50.0)
        assert linear.updates <= distance.updates

    def test_known_route_is_the_lower_bound(self, tiny_freeway_scenario):
        mapped = run_protocol(tiny_freeway_scenario, "map", 150.0)
        known = run_protocol(tiny_freeway_scenario, "known_route", 150.0)
        assert known.updates <= mapped.updates


class TestHeadlineReductions:
    def test_freeway_linear_reduction_large(self, tiny_freeway_scenario):
        """The paper quotes up to 83% reduction of linear DR vs distance-based."""
        figure = figure_for_scenario(tiny_freeway_scenario, accuracies=[50.0, 100.0, 200.0])
        assert figure.reduction_vs_baseline("linear") > 60.0

    def test_freeway_map_vs_linear_reduction(self, tiny_freeway_scenario):
        """The paper quotes up to 60% reduction of map-based vs linear DR."""
        figure = figure_for_scenario(tiny_freeway_scenario, accuracies=[50.0, 100.0, 200.0])
        assert figure.reduction_between("map", "linear") > 30.0

    def test_freeway_overall_reduction(self, tiny_freeway_scenario):
        """The paper quotes an overall reduction of up to 91%."""
        figure = figure_for_scenario(tiny_freeway_scenario, accuracies=[50.0, 100.0, 200.0])
        assert figure.reduction_vs_baseline("map") > 75.0


class TestTrends:
    def test_updates_decrease_with_requested_uncertainty(self, tiny_freeway_scenario):
        figure = figure_for_scenario(
            tiny_freeway_scenario, accuracies=[50.0, 150.0, 400.0]
        )
        for series in figure.series.values():
            rates = series.updates_per_hour
            assert rates[0] >= rates[-1]

    def test_freeway_benefits_more_than_city(
        self, tiny_freeway_scenario, tiny_city_scenario
    ):
        """The linear-DR reduction is larger on the freeway than in the city (Sec. 4)."""
        freeway = figure_for_scenario(tiny_freeway_scenario, accuracies=[100.0])
        city = figure_for_scenario(tiny_city_scenario, accuracies=[100.0])
        assert freeway.reduction_vs_baseline("linear") > city.reduction_vs_baseline("linear")


class TestAccuracyGuarantee:
    @pytest.mark.parametrize("protocol_id", ["distance", "linear", "map"])
    def test_server_error_stays_bounded(self, tiny_freeway_scenario, protocol_id):
        accuracy = 150.0
        result = run_protocol(tiny_freeway_scenario, protocol_id, accuracy)
        # Allowance: the sensor error (the source only sees noisy positions)
        # plus the movement within one sampling interval.
        max_speed = tiny_freeway_scenario.true_trace.speeds().max()
        slack = 4 * tiny_freeway_scenario.sensor_sigma + max_speed * 1.0
        assert result.metrics.max_error <= accuracy + slack
        assert result.metrics.violation_fraction < 0.2


class TestMapMatchingQuality:
    def test_online_matching_accuracy_high_on_freeway(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        points = match_trace(
            scenario.sensor_trace, scenario.roadmap,
            MatcherConfig(tolerance=scenario.matching_tolerance),
        )
        accuracy = matching_accuracy(points, scenario.journey.link_ids, scenario.roadmap)
        assert accuracy > 0.9

    def test_protocol_rarely_goes_off_map(self, tiny_city_scenario):
        result = run_protocol(tiny_city_scenario, "map", 100.0)
        assert result.matcher_stats.get("off_map_events", 0) <= 2


class TestHistoryBasedVariant:
    def test_learned_map_supports_map_based_protocol(self, tiny_city_scenario):
        """History-based DR: learn the map from the trace, then run map-based DR on it."""
        scenario = tiny_city_scenario
        learner = HistoryMapLearner(cell_size=40.0)
        learner.add_trace(scenario.true_trace)
        learned_map = learner.build_map()
        protocol = MapBasedProtocol(
            accuracy=100.0,
            roadmap=learned_map,
            sensor_uncertainty=scenario.sensor_sigma,
            estimation_window=scenario.estimation_window,
            config=MapBasedConfig(matching_tolerance=60.0),
        )
        result = ProtocolSimulation(
            protocol=protocol,
            sensor_trace=scenario.sensor_trace,
            truth_trace=scenario.true_trace,
        ).run()
        # The learned map must actually be usable: the protocol stays on the
        # map most of the time and the accuracy bound still holds.
        distance_result = run_protocol(scenario, "distance", 100.0)
        assert result.updates < distance_result.updates
        max_speed = scenario.true_trace.speeds().max()
        assert result.metrics.max_error <= 100.0 + 4 * scenario.sensor_sigma + max_speed
