"""Tests for cell overrides, shard skew, and load-adaptive rebalancing."""

import numpy as np
import pytest

from repro.geo.bbox import BoundingBox
from repro.obs.metrics import MetricsRegistry, publish_service_stats
from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason
from repro.protocols.prediction import StaticPrediction
from repro.service.facade import LocationService
from repro.service.sharding import (
    GridHashPolicy,
    RebalancePolicy,
    shard_skew,
)


def make_message(sequence=0, time=0.0, position=(0.0, 0.0), velocity=(0.0, 0.0)):
    state = ObjectState(
        time=time, position=position, velocity=velocity,
        speed=float(np.hypot(*velocity)),
    )
    return UpdateMessage(sequence=sequence, state=state, reason=UpdateReason.THRESHOLD)


def _cells_hashing_to(policy, shard, n):
    """First *n* routing cells (row-major scan) the pure hash puts on *shard*."""
    found = []
    for cx in range(40):
        for cy in range(40):
            if policy.hash_shard_for_cell((cx, cy)) == shard:
                found.append((cx, cy))
                if len(found) == n:
                    return found
    raise AssertionError("not enough cells found")


def _populate(service, cell, count, prefix):
    """Register+update *count* objects spread inside routing *cell*."""
    rs = service.policy.region_size
    for i in range(count):
        oid = f"{prefix}-{i}"
        x = (cell[0] + 0.1 + 0.8 * (i % 7) / 7.0) * rs
        y = (cell[1] + 0.1 + 0.8 * (i // 7 % 7) / 7.0) * rs
        service.register_object(oid, prediction=StaticPrediction())
        service.receive_update(oid, make_message(position=(x, y)), 0.0)


def _skewed_service(n_shards=3, region_size=100.0):
    """A service whose shard 0 holds ~5x its fair share, spread over cells."""
    service = LocationService(n_shards=n_shards, region_size=region_size)
    hot_cells = _cells_hashing_to(service.policy, 0, 4)
    for j, (cell, count) in enumerate(zip(hot_cells, (30, 20, 14, 8))):
        _populate(service, cell, count, f"hot{j}")
    for shard in range(1, n_shards):
        cold = _cells_hashing_to(service.policy, shard, 1)[0]
        _populate(service, cold, 4, f"cold{shard}")
    return service


def _shard_counts(service):
    return [len(shard.object_ids()) for shard in service.shards]


class TestShardSkew:
    def test_empty_is_zero(self):
        assert shard_skew([]) == 0.0
        assert shard_skew([0, 0, 0]) == 0.0

    def test_balanced_is_one(self):
        assert shard_skew([10, 10, 10]) == 1.0

    def test_skew_is_max_over_mean(self):
        assert shard_skew([30, 10, 20]) == pytest.approx(30 / 20)


class TestCellOverrides:
    def test_override_changes_routing_and_returns_previous(self):
        policy = GridHashPolicy(4, region_size=100.0)
        cell = (3, 5)
        natural = policy.shard_for_cell(cell)
        target = (natural + 1) % 4
        assert policy.override_cell(cell, target) == natural
        assert policy.shard_for_cell(cell) == target
        assert policy.hash_shard_for_cell(cell) == natural
        # Points inside the cell follow the override.
        assert policy.shard_for_point((350.0, 550.0)) == target

    def test_override_back_to_natural_drops_entry(self):
        policy = GridHashPolicy(4, region_size=100.0)
        cell = (3, 5)
        natural = policy.hash_shard_for_cell(cell)
        policy.override_cell(cell, (natural + 1) % 4)
        assert policy.override_cell(cell, natural) == (natural + 1) % 4
        assert policy.overrides == {}
        assert policy.shard_for_cell(cell) == natural

    def test_clear_overrides(self):
        policy = GridHashPolicy(4, region_size=100.0)
        policy.override_cell((1, 1), 0)
        policy.override_cell((2, 2), 3)
        policy.clear_overrides()
        assert policy.overrides == {}

    def test_out_of_range_shard_rejected(self):
        policy = GridHashPolicy(4)
        with pytest.raises(ValueError):
            policy.override_cell((0, 0), 4)
        with pytest.raises(ValueError):
            policy.override_cell((0, 0), -1)

    def test_shards_for_box_sees_overrides(self):
        policy = GridHashPolicy(4, region_size=100.0)
        cell = (2, 2)
        natural = policy.hash_shard_for_cell(cell)
        target = (natural + 1) % 4
        policy.override_cell(cell, target)
        box = BoundingBox(205.0, 205.0, 295.0, 295.0)  # inside cell (2, 2)
        assert target in policy.shards_for_box(box)


class TestRebalancePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RebalancePolicy(skew_threshold=1.0)
        with pytest.raises(ValueError):
            RebalancePolicy(max_cells_per_pass=0)

    def test_pass_reduces_skew(self):
        service = _skewed_service()
        policy = RebalancePolicy(skew_threshold=1.4, min_objects=16)
        before = shard_skew(_shard_counts(service))
        assert before > 1.4
        report = policy.maybe_rebalance(service, 0.0)
        assert report is not None
        assert report.skew_before == pytest.approx(before)
        assert report.skew_after < report.skew_before
        assert report.handoffs > 0
        assert policy.passes == 1
        assert policy.objects_moved == report.handoffs
        # Counts actually changed on the shards themselves.
        assert shard_skew(_shard_counts(service)) == pytest.approx(report.skew_after)

    def test_rebalance_is_deterministic(self):
        reports = []
        for _ in range(2):
            service = _skewed_service()
            policy = RebalancePolicy(skew_threshold=1.4, min_objects=16)
            reports.append(policy.maybe_rebalance(service, 0.0).as_dict())
        assert reports[0] == reports[1]

    def test_answers_unchanged_by_rebalance(self):
        service = _skewed_service()
        rs = service.policy.region_size
        box = BoundingBox(0.0, 0.0, 40 * rs, 40 * rs)
        probes = [(150.0, 150.0), (700.0, 300.0), (50.0, 950.0)]
        before_range = service.range_query(box, 0.0)
        before_nearest = [service.nearest_objects(p, 0.0, k=5) for p in probes]
        before_fence = [service.geofence_query(p, 500.0, 0.0) for p in probes]
        report = RebalancePolicy(skew_threshold=1.4, min_objects=16).maybe_rebalance(
            service, 0.0
        )
        assert report is not None
        assert service.range_query(box, 0.0) == before_range
        assert [service.nearest_objects(p, 0.0, k=5) for p in probes] == before_nearest
        assert [service.geofence_query(p, 500.0, 0.0) for p in probes] == before_fence

    def test_skips_below_threshold(self):
        service = _skewed_service()
        policy = RebalancePolicy(skew_threshold=10.0, min_objects=16)
        assert policy.maybe_rebalance(service, 0.0) is None
        assert policy.checks == 1
        assert policy.passes == 0

    def test_skips_small_fleets(self):
        service = _skewed_service()
        policy = RebalancePolicy(skew_threshold=1.2, min_objects=10_000)
        assert policy.maybe_rebalance(service, 0.0) is None

    def test_skips_single_shard(self):
        service = LocationService(n_shards=1)
        _populate(service, (0, 0), 80, "solo")
        policy = RebalancePolicy(skew_threshold=1.2, min_objects=16)
        assert policy.maybe_rebalance(service, 0.0) is None

    def test_repeated_passes_converge(self):
        service = _skewed_service()
        policy = RebalancePolicy(
            skew_threshold=1.4, max_cells_per_pass=1, min_objects=16
        )
        skews = [shard_skew(_shard_counts(service))]
        for _ in range(6):
            if policy.maybe_rebalance(service, 0.0) is None:
                break
            skews.append(shard_skew(_shard_counts(service)))
        assert len(skews) > 1
        assert skews[-1] < skews[0]
        # Once converged the policy stays quiet.
        assert policy.maybe_rebalance(service, 0.0) is None


class TestSkewGauge:
    def test_publish_service_stats_exports_shard_skew(self):
        service = _skewed_service()
        registry = MetricsRegistry()
        publish_service_stats(registry, service.service_stats())
        snapshot = registry.snapshot()
        assert "service.shard.skew" in snapshot
        assert snapshot["service.shard.skew"]["kind"] == "gauge"
        skew = snapshot["service.shard.skew"]["value"]
        assert skew == pytest.approx(service.service_stats()["load_imbalance"])
        assert skew > 1.4
