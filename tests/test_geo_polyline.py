"""Unit tests for repro.geo.polyline."""

import math

import numpy as np
import pytest

from repro.geo.polyline import Polyline
from repro.geo.segment import Segment


@pytest.fixture()
def l_shape():
    """An L-shaped polyline: 100 m east, then 100 m north."""
    return Polyline([(0.0, 0.0), (100.0, 0.0), (100.0, 100.0)])


class TestConstruction:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            Polyline([(0.0, 0.0)])

    def test_length(self, l_shape):
        assert l_shape.length == pytest.approx(200.0)

    def test_start_end(self, l_shape):
        assert l_shape.start.tolist() == [0.0, 0.0]
        assert l_shape.end.tolist() == [100.0, 100.0]

    def test_len_returns_vertex_count(self, l_shape):
        assert len(l_shape) == 3

    def test_from_segments(self):
        segs = [Segment((0, 0), (10, 0)), Segment((10, 0), (10, 10))]
        poly = Polyline.from_segments(segs)
        assert poly.length == pytest.approx(20.0)
        assert len(poly) == 3

    def test_from_segments_empty_raises(self):
        with pytest.raises(ValueError):
            Polyline.from_segments([])

    def test_points_are_read_only(self, l_shape):
        with pytest.raises(ValueError):
            l_shape.points[0][0] = 99.0

    def test_segments_roundtrip(self, l_shape):
        segs = l_shape.segments()
        assert len(segs) == 2
        assert segs[0].length == pytest.approx(100.0)

    def test_bounds(self, l_shape):
        assert l_shape.bounds() == (0.0, 0.0, 100.0, 100.0)


class TestPointAt:
    def test_start(self, l_shape):
        assert l_shape.point_at(0.0).tolist() == [0.0, 0.0]

    def test_corner(self, l_shape):
        assert l_shape.point_at(100.0).tolist() == [100.0, 0.0]

    def test_second_leg(self, l_shape):
        assert l_shape.point_at(150.0).tolist() == [100.0, 50.0]

    def test_clamped(self, l_shape):
        assert l_shape.point_at(-5.0).tolist() == [0.0, 0.0]
        assert l_shape.point_at(500.0).tolist() == [100.0, 100.0]

    def test_direction_at(self, l_shape):
        assert l_shape.direction_at(50.0).tolist() == [1.0, 0.0]
        assert l_shape.direction_at(150.0).tolist() == [0.0, 1.0]

    def test_bearing_at(self, l_shape):
        assert l_shape.bearing_at(50.0) == pytest.approx(math.pi / 2)
        assert l_shape.bearing_at(150.0) == pytest.approx(0.0)


class TestProjection:
    def test_project_onto_first_leg(self, l_shape):
        point, offset, dist = l_shape.project((40.0, 10.0))
        assert point.tolist() == [40.0, 0.0]
        assert offset == pytest.approx(40.0)
        assert dist == pytest.approx(10.0)

    def test_project_onto_second_leg(self, l_shape):
        point, offset, dist = l_shape.project((90.0, 60.0))
        assert point.tolist() == [100.0, 60.0]
        assert offset == pytest.approx(160.0)
        assert dist == pytest.approx(10.0)

    def test_project_point_on_line_zero_distance(self, l_shape):
        _, offset, dist = l_shape.project((100.0, 30.0))
        assert dist == pytest.approx(0.0)
        assert offset == pytest.approx(130.0)

    def test_offset_consistent_with_point_at(self, l_shape):
        for query in [(10.0, 5.0), (99.0, 3.0), (120.0, 90.0), (-20.0, -20.0)]:
            point, offset, _ = l_shape.project(query)
            np.testing.assert_allclose(l_shape.point_at(offset), point, atol=1e-9)

    def test_distance_to(self, l_shape):
        assert l_shape.distance_to((50.0, -30.0)) == pytest.approx(30.0)


class TestTransformations:
    def test_reversed_geometry(self, l_shape):
        rev = l_shape.reversed()
        assert rev.start.tolist() == [100.0, 100.0]
        assert rev.length == pytest.approx(l_shape.length)

    def test_resample_spacing(self, l_shape):
        dense = l_shape.resample(10.0)
        assert dense.length == pytest.approx(l_shape.length, rel=1e-6)
        assert len(dense) >= 20

    def test_resample_preserves_endpoints(self, l_shape):
        dense = l_shape.resample(7.0)
        np.testing.assert_allclose(dense.start, l_shape.start)
        np.testing.assert_allclose(dense.end, l_shape.end)

    def test_resample_invalid_spacing(self, l_shape):
        with pytest.raises(ValueError):
            l_shape.resample(0.0)

    def test_subpolyline(self, l_shape):
        sub = l_shape.subpolyline(50.0, 150.0)
        assert sub.length == pytest.approx(100.0)
        np.testing.assert_allclose(sub.start, [50.0, 0.0])
        np.testing.assert_allclose(sub.end, [100.0, 50.0])

    def test_subpolyline_invalid_range(self, l_shape):
        with pytest.raises(ValueError):
            l_shape.subpolyline(120.0, 80.0)

    def test_concat(self, l_shape):
        other = Polyline([(100.0, 100.0), (200.0, 100.0)])
        joined = l_shape.concat(other)
        assert joined.length == pytest.approx(300.0)
        assert len(joined) == 4  # duplicate junction point removed
