"""Serialisation of road maps to and from JSON.

A portable, dependency-free JSON format keeps maps reproducible across runs
and lets users plug in their own networks (for example, one imported from
OpenStreetMap by :mod:`repro.ingest`) without touching the generators.

Version history
---------------
1
    Intersections + links (positions, shape points, class, speed limit).
2
    Adds the optional top-level ``metadata`` object: imported maps record
    their source extract, geodesic origin (``metadata["origin"]["lat"]`` /
    ``["lon"]``) and ingest report there, and the compiled-map cache relies
    on it surviving the round trip.  Version-1 documents still load (their
    metadata is simply empty).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.geo.polyline import Polyline
from repro.roadmap.builder import RoadMapBuilder
from repro.roadmap.elements import Intersection, Link, RoadClass
from repro.roadmap.graph import RoadMap

#: Format version written into every file; bumped on incompatible changes.
FORMAT_VERSION = 2

#: Versions this build can read.
SUPPORTED_VERSIONS = (1, 2)


def roadmap_to_dict(roadmap: RoadMap) -> dict:
    """Convert a :class:`RoadMap` to a JSON-serialisable dictionary."""
    document = {
        "format": "repro-roadmap",
        "version": FORMAT_VERSION,
        "intersections": [
            {"id": node.id, "x": float(node.position[0]), "y": float(node.position[1])}
            for node in roadmap.intersections.values()
        ],
        "links": [
            {
                "id": link.id,
                "from": link.from_node,
                "to": link.to_node,
                "road_class": link.road_class.value,
                "speed_limit": float(link.speed_limit),
                "name": link.name,
                "shape_points": [
                    [float(x), float(y)] for x, y in link.shape_points()
                ],
            }
            for link in roadmap.links.values()
        ],
    }
    if roadmap.metadata:
        document["metadata"] = roadmap.metadata
    return document


def roadmap_from_dict(
    data: dict, index_cell_size: float = 250.0, trusted: bool = False
) -> RoadMap:
    """Rebuild a :class:`RoadMap` from :func:`roadmap_to_dict` output.

    ``index_cell_size`` sizes the rebuilt spatial index — the index is a
    runtime structure, not part of the document, so a loader wanting
    non-default granularity passes it here (the compiled-map cache does).

    ``trusted`` skips the per-point coercion, duplicate collapsing and
    referential checks of the builder path and constructs elements
    directly — only for documents this codebase itself wrote (the
    compiled-map cache, keyed by content hash, qualifies; hand-edited maps
    do not).  Both paths produce bit-identical maps for a document that
    came out of :func:`roadmap_to_dict`.

    Raises
    ------
    ValueError
        If the document is not a repro road map, or was written by a format
        version this build cannot read (the message names both versions, so
        a stale compiled-map cache is diagnosable at a glance).
    """
    if data.get("format") != "repro-roadmap":
        raise ValueError("not a repro road-map document")
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise ValueError(
            f"unsupported road-map format version {version!r}; this build reads "
            f"versions {supported}. Re-export the map (or re-run `repro "
            f"import-map`) to regenerate it in the current format."
        )
    if trusted:
        return _roadmap_from_trusted_dict(data, index_cell_size)
    builder = RoadMapBuilder(index_cell_size=index_cell_size)
    for node in data["intersections"]:
        builder.add_intersection((node["x"], node["y"]), node_id=int(node["id"]))
    for link in data["links"]:
        builder.add_link(
            from_node=int(link["from"]),
            to_node=int(link["to"]),
            shape_points=[(float(x), float(y)) for x, y in link.get("shape_points", [])],
            road_class=RoadClass(link.get("road_class", RoadClass.SECONDARY.value)),
            speed_limit=float(link["speed_limit"]) if link.get("speed_limit") else None,
            name=link.get("name", ""),
            link_id=int(link["id"]),
        )
    return builder.build(metadata=data.get("metadata"))


def _roadmap_from_trusted_dict(data: dict, index_cell_size: float) -> RoadMap:
    """The ``trusted=True`` fast path: direct element construction.

    A document written by :func:`roadmap_to_dict` is already normalised —
    endpoints exist, geometry is duplicate-free and finite — so the
    dominant costs of the builder path (one ``as_vec`` per vertex, one
    distance check per vertex pair) are pure re-verification.  Positions
    still flow through ``float()``/``np.array`` so the arrays are the same
    float64 values the slow path would produce.
    """
    intersections = []
    position_of = {}
    for node in data["intersections"]:
        pos = np.array((float(node["x"]), float(node["y"])), dtype=float)
        intersection = Intersection(id=int(node["id"]), position=pos)
        intersections.append(intersection)
        position_of[intersection.id] = intersection.position
    links = []
    for link in data["links"]:
        from_node = int(link["from"])
        to_node = int(link["to"])
        shape = link.get("shape_points", ())
        points = np.empty((len(shape) + 2, 2), dtype=float)
        points[0] = position_of[from_node]
        for i, (x, y) in enumerate(shape, start=1):
            points[i] = (float(x), float(y))
        points[-1] = position_of[to_node]
        links.append(
            Link(
                id=int(link["id"]),
                from_node=from_node,
                to_node=to_node,
                geometry=Polyline.from_array(points),
                road_class=RoadClass(link.get("road_class", RoadClass.SECONDARY.value)),
                speed_limit=float(link["speed_limit"]) if link.get("speed_limit") else None,
                name=link.get("name", ""),
            )
        )
    return RoadMap(
        intersections,
        links,
        index_cell_size=index_cell_size,
        metadata=data.get("metadata"),
    )


def save_roadmap(roadmap: RoadMap, path: Union[str, Path]) -> None:
    """Write *roadmap* to *path* as JSON."""
    path = Path(path)
    path.write_text(json.dumps(roadmap_to_dict(roadmap)), encoding="utf-8")


def load_roadmap(
    path: Union[str, Path], index_cell_size: float = 250.0, trusted: bool = False
) -> RoadMap:
    """Read a road map previously written by :func:`save_roadmap`."""
    path = Path(path)
    return roadmap_from_dict(
        json.loads(path.read_text(encoding="utf-8")),
        index_cell_size=index_cell_size,
        trusted=trusted,
    )
