"""E5 — Figure 8: inter-urban traffic.

Same protocol comparison as Figure 7 for the inter-urban scenario.
"""

from repro.experiments.figures import figure8

from conftest import run_once
from figure_common import assert_figure_shape, print_figure


def test_figure8_interurban(benchmark, scale):
    figure = run_once(benchmark, figure8, scale=scale)
    print_figure(figure, "Fig. 8 — inter-urban traffic")
    assert_figure_shape(figure, map_should_win=True)
    assert figure.reduction_vs_baseline("linear") >= 50.0
    assert figure.reduction_vs_baseline("map") >= 60.0
