"""The location server.

Stores, per tracked object, the last received update and the prediction
function agreed with that object's source, and reconstructs the object's
assumed position at any query time — the right-hand side of the paper's
Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.protocols.base import ObjectState, UpdateMessage
from repro.protocols.prediction import PredictionFunction, StaticPrediction


@dataclass(slots=True)
class TrackedObject:
    """Server-side record for one mobile object.

    A fleet holds one of these per tracked object, so the record is slotted:
    no per-instance ``__dict__``, which at mega-fleet scale saves roughly
    100 bytes per object and keeps attribute access on the hot predict path
    a fixed-offset load.
    """

    object_id: str
    prediction: PredictionFunction
    accuracy: float
    state: Optional[ObjectState] = None
    updates_received: int = 0
    last_update_time: Optional[float] = None

    def predict(self, time: float) -> Optional[np.ndarray]:
        """Predicted position at *time*, or ``None`` before the first update."""
        if self.state is None:
            return None
        return self.prediction.predict(self.state, time)


class LocationServer:
    """Stores object states and answers position queries."""

    def __init__(self) -> None:
        self._objects: Dict[str, TrackedObject] = {}

    # ------------------------------------------------------------------ #
    # registration and updates
    # ------------------------------------------------------------------ #
    def register_object(
        self,
        object_id: str,
        prediction: Optional[PredictionFunction] = None,
        accuracy: float = float("inf"),
    ) -> TrackedObject:
        """Register a mobile object and the prediction function its source uses.

        Registering the prediction function up front mirrors the paper's
        requirement that "both the server and the source use the same
        prediction function and parameters".
        """
        if object_id in self._objects:
            raise ValueError(f"object {object_id!r} already registered")
        record = TrackedObject(
            object_id=object_id,
            prediction=prediction or StaticPrediction(),
            accuracy=float(accuracy),
        )
        self._objects[object_id] = record
        return record

    def is_registered(self, object_id: str) -> bool:
        """Whether *object_id* is known to the server."""
        return object_id in self._objects

    def adopt(self, record: TrackedObject) -> None:
        """Take over an existing record wholesale (shard handoff).

        Unlike :meth:`register_object` this preserves the record's state,
        update counters and timestamps — the object merely changes the
        server instance responsible for it.
        """
        if record.object_id in self._objects:
            raise ValueError(f"object {record.object_id!r} already registered")
        self._objects[record.object_id] = record

    def remove_object(self, object_id: str) -> TrackedObject:
        """Remove and return the record for *object_id* (shard handoff)."""
        return self._objects.pop(object_id)

    def receive_update(self, object_id: str, message: UpdateMessage, time: float) -> None:
        """Apply an update message received at *time*."""
        record = self._objects[object_id]
        record.state = message.state
        record.updates_received += 1
        record.last_update_time = time

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def tracked_object(self, object_id: str) -> TrackedObject:
        """The server-side record for *object_id*."""
        return self._objects[object_id]

    def object_ids(self) -> list[str]:
        """All registered object ids."""
        return list(self._objects)

    def predict_position(self, object_id: str, time: float) -> Optional[np.ndarray]:
        """The position the server assumes for *object_id* at *time*."""
        return self._objects[object_id].predict(time)

    def predict_positions(
        self, object_ids: Sequence[str], time: float
    ) -> List[Optional[np.ndarray]]:
        """Predicted positions for many objects at one query time.

        The batch entry point the fleet simulation loop uses: one call per
        simulation timestep instead of one per object.  Objects that have
        not reported yet yield ``None`` at their position in the result.
        """
        objects = self._objects
        return [objects[object_id].predict(time) for object_id in object_ids]

    def last_reported_state(self, object_id: str) -> Optional[ObjectState]:
        """The last update received for *object_id* (or ``None``)."""
        return self._objects[object_id].state

    def all_positions(self, time: float) -> Dict[str, np.ndarray]:
        """Predicted positions of every object that has reported at least once."""
        out: Dict[str, np.ndarray] = {}
        for object_id, record in self._objects.items():
            predicted = record.predict(time)
            if predicted is not None:
                out[object_id] = predicted
        return out
