"""The protocol simulation loop.

:class:`ProtocolSimulation` replays a sensor trace through a source running
an update protocol, transmits the resulting updates over a message channel
to a location server, and measures the error between the server's predicted
position and the ground truth at every sample — the paper's experimental
setup (Sec. 4).

Since the fleet refactor this is a thin single-lane façade over
:class:`~repro.sim.fleet.FleetSimulation`: one object, one protocol, one
trace, same semantics as before, same engine underneath as every other
entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.protocols.base import UpdateProtocol
from repro.service.channel import MessageChannel
from repro.sim.fleet import FleetLane, FleetSimulation
from repro.sim.metrics import SimulationResult
from repro.traces.trace import Trace


@dataclass
class ProtocolSimulation:
    """One object, one protocol, one trace.

    Parameters
    ----------
    protocol:
        The (source-side) update protocol under test.
    sensor_trace:
        What the positioning sensor reports (noisy positions).
    truth_trace:
        Ground-truth positions used to measure the accuracy actually
        delivered at the server.  Must be sampled at the same timestamps as
        the sensor trace.  When omitted, the sensor trace doubles as truth.
    channel:
        Source-to-server channel; defaults to loss-free and instantaneous.
    object_id:
        Identifier under which the object is registered at the server.
    count_initial_update:
        Whether the very first update (the one that bootstraps the server)
        is included in the update count.  The paper counts transmitted
        messages, so the default is ``True``; the effect on updates/hour is
        negligible for hour-long traces.
    kernel:
        ``"tick"`` (time-stepped loop) or ``"event"`` (discrete-event
        schedule); see :class:`~repro.sim.fleet.FleetSimulation`.
    """

    protocol: UpdateProtocol
    sensor_trace: Trace
    truth_trace: Optional[Trace] = None
    channel: Optional[MessageChannel] = None
    object_id: str = "object-0"
    count_initial_update: bool = True
    kernel: str = "tick"

    def run(self) -> SimulationResult:
        """Execute the simulation and return the collected metrics."""
        fleet = FleetSimulation(
            [
                FleetLane(
                    object_id=self.object_id,
                    protocol=self.protocol,
                    sensor_trace=self.sensor_trace,
                    truth_trace=self.truth_trace,
                    channel=self.channel,
                )
            ],
            count_initial_update=self.count_initial_update,
            kernel=self.kernel,
        )
        return fleet.run().results[self.object_id]


def run_simulation(
    protocol: UpdateProtocol,
    sensor_trace: Trace,
    truth_trace: Optional[Trace] = None,
    channel: Optional[MessageChannel] = None,
    kernel: str = "tick",
) -> SimulationResult:
    """Convenience wrapper around :class:`ProtocolSimulation`."""
    return ProtocolSimulation(
        protocol=protocol,
        sensor_trace=sensor_trace,
        truth_trace=truth_trace,
        channel=channel,
        kernel=kernel,
    ).run()
