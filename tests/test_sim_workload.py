"""Tests for query workloads and the fleet's pluggable service backend.

The acceptance-critical property lives here: a fleet served by a
``LocationService`` with one shard (and, since handoff never touches record
state, any shard count) produces bit-identical simulation results to the
plain single ``LocationServer`` — asserted over every scenario of the
library at the golden scales.
"""

import numpy as np
import pytest

from test_golden_metrics import GOLDEN_NAMES, golden_scale

from repro.geo.bbox import BoundingBox
from repro.service.channel import MessageChannel
from repro.service.facade import LocationService
from repro.sim.config import SimulationConfig
from repro.sim.fleet import FleetLane, FleetSimulation
from repro.sim.runner import QueryBenchSpec, ScenarioSpec, SweepRunner
from repro.sim.workload import (
    QueryWorkload,
    WorkloadExecutor,
    default_query_mix,
)


def _build(protocol_id, accuracy, scenario):
    return SimulationConfig(protocol_id=protocol_id, accuracy=accuracy).build_protocol(scenario)


def _lanes(scenario, configs):
    return [
        FleetLane(
            object_id=f"obj-{n}",
            protocol=_build(pid, us, scenario),
            sensor_trace=scenario.sensor_trace,
            truth_trace=scenario.true_trace,
        )
        for n, (pid, us) in enumerate(configs)
    ]


def _assert_results_identical(a, b):
    assert a.updates == b.updates
    assert a.bytes_sent == b.bytes_sent
    assert a.update_reasons == b.update_reasons
    assert np.array_equal(a.metrics.errors, b.metrics.errors)


class TestQueryWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueryWorkload(queries_per_tick=-1.0)
        with pytest.raises(ValueError):
            QueryWorkload(mix={"range": 0.0})
        with pytest.raises(ValueError):
            QueryWorkload(mix={"teleport": 1.0})
        with pytest.raises(ValueError):
            QueryWorkload(mix={"range": -1.0, "nearest": 2.0})
        with pytest.raises(ValueError):
            QueryWorkload(k=0)
        with pytest.raises(ValueError):
            QueryWorkload(range_extent_m=0.0)

    def test_parse_mix(self):
        assert QueryWorkload.parse_mix("range=2,nearest=1") == {"range": 2.0, "nearest": 1.0}
        assert QueryWorkload.parse_mix("geofence=0.5") == {"geofence": 0.5}
        with pytest.raises(ValueError):
            QueryWorkload.parse_mix("")
        with pytest.raises(ValueError):
            QueryWorkload.parse_mix("range")

    def test_default_query_mix_shapes(self):
        walk = default_query_mix("walking")
        assert walk["geofence"] > walk["range"]
        city = default_query_mix("city")
        assert city["nearest"] > city["geofence"]
        freeway = default_query_mix("freeway")
        assert freeway["range"] > freeway["nearest"]
        # Explicit library overrides win over the topology fallback.
        delivery = default_query_mix("delivery_rounds")
        assert delivery["nearest"] == 3.0
        assert default_query_mix(None) == {"range": 1.0, "nearest": 1.0, "geofence": 1.0}
        assert default_query_mix("not-a-scenario") == {
            "range": 1.0, "nearest": 1.0, "geofence": 1.0,
        }


class TestWorkloadExecutor:
    def _service_with_objects(self, n=40, seed=0):
        from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason
        from repro.protocols.prediction import LinearPrediction

        rng = np.random.default_rng(seed)
        service = LocationService(n_shards=3, region_size=1500.0)
        for i in range(n):
            oid = f"o{i:02d}"
            service.register_object(oid, prediction=LinearPrediction(), accuracy=50.0)
            state = ObjectState(
                time=0.0,
                position=rng.uniform(0.0, 6000.0, size=2),
                velocity=rng.uniform(-10.0, 10.0, size=2),
                speed=1.0,
            )
            service.receive_update(
                oid, UpdateMessage(sequence=0, state=state, reason=UpdateReason.THRESHOLD), 0.0
            )
        return service

    def test_fractional_rate_accumulates_exactly(self):
        service = self._service_with_objects()
        workload = QueryWorkload(queries_per_tick=0.25, seed=1)
        executor = WorkloadExecutor(workload, service, BoundingBox(0.0, 0.0, 6000.0, 6000.0))
        for t in range(100):
            executor.on_tick(float(t))
        assert executor.report.ticks == 100
        assert executor.report.queries == 25

    def test_same_seed_same_stream(self):
        service = self._service_with_objects()
        area = BoundingBox(0.0, 0.0, 6000.0, 6000.0)
        answers = []
        for _ in range(2):
            workload = QueryWorkload(queries_per_tick=3.0, seed=9)
            executor = WorkloadExecutor(workload, service, area, record_answers=True)
            for t in range(20):
                executor.on_tick(float(t))
            answers.append(executor.answers)
        assert answers[0] == answers[1]

    def test_mix_weights_respected(self):
        service = self._service_with_objects()
        workload = QueryWorkload(
            queries_per_tick=5.0, mix={"nearest": 1.0}, seed=2
        )
        executor = WorkloadExecutor(workload, service, BoundingBox(0.0, 0.0, 6000.0, 6000.0))
        for t in range(10):
            executor.on_tick(float(t))
        assert executor.report.by_kind == {"nearest": 50}
        assert executor.report.queries == 50
        summary = executor.report.as_dict()
        assert summary["nearest_queries"] == 50
        assert summary["range_queries"] == 0


class TestFleetServiceBackend:
    """FleetSimulation with a LocationService backend."""

    @pytest.fixture(scope="class")
    def city(self, tiny_city_scenario):
        return tiny_city_scenario

    def _run(self, scenario, server=None, workload=None, channel=None, record=False):
        configs = [("distance", 50.0), ("linear", 100.0), ("linear", 200.0), ("map", 100.0)]
        return FleetSimulation(
            _lanes(scenario, configs),
            server=server,
            channel=channel,
            query_workload=workload,
            record_query_answers=record,
        )

    def test_sharded_backend_matches_plain_server(self, city):
        plain = self._run(city).run()
        for shards in (1, 4):
            sharded = self._run(city, server=LocationService(n_shards=shards)).run()
            for oid in plain.results:
                _assert_results_identical(plain.results[oid], sharded.results[oid])
            assert sharded.service_stats["shards"] == shards
            assert sharded.service_stats["updates_ingested"] == sum(
                r.updates for r in sharded.results.values()
            )
            for result in sharded.results.values():
                assert 0 <= result.service_stats["shard"] < shards
                assert result.as_dict()["svc_shard"] == result.service_stats["shard"]

    def test_plain_results_carry_no_service_stats(self, city):
        plain = self._run(city).run()
        assert plain.service_stats == {}
        assert plain.workload is None
        for result in plain.results.values():
            assert result.service_stats == {}
            assert "svc_shard" not in result.as_dict()

    def test_workload_does_not_perturb_simulation(self, city):
        workload = QueryWorkload(queries_per_tick=1.0, seed=3)
        without = self._run(city, server=LocationService(n_shards=4)).run()
        with_queries = self._run(
            city, server=LocationService(n_shards=4), workload=workload
        ).run()
        for oid in without.results:
            _assert_results_identical(without.results[oid], with_queries.results[oid])
        assert with_queries.workload is not None
        assert with_queries.workload.queries > 0
        assert with_queries.workload.ticks > 0

    def test_workload_answers_identical_on_both_backends(self, city):
        """The same query stream gets the same answers, indexed or scanned."""
        workload = QueryWorkload(queries_per_tick=0.5, seed=4)
        runs = {}
        for name, server in (("plain", None), ("sharded", LocationService(n_shards=4))):
            sim = self._run(city, server=server, workload=workload, record=True)
            sim.run()
            runs[name] = sim.workload_executor.answers
        assert len(runs["plain"]) > 0
        assert runs["plain"] == runs["sharded"]

    def test_channel_stats_identical_under_batched_ingestion(self, city):
        """Satellite: messages / drops / in-flight match the per-message path."""
        results = {}
        for name, server in (("plain", None), ("sharded", LocationService(n_shards=4))):
            channel = MessageChannel(latency=7.0, loss_probability=0.2, seed=42)
            fleet = self._run(city, server=server, channel=channel).run()
            results[name] = (
                channel.stats.messages_sent,
                channel.stats.messages_delivered,
                channel.stats.messages_lost,
                channel.stats.bytes_sent,
                channel.stats.bytes_delivered,
                channel.in_flight,
                {oid: r.updates for oid, r in fleet.results.items()},
            )
            assert channel.stats.messages_sent > 0
            assert channel.stats.messages_lost > 0
        assert results["plain"] == results["sharded"]


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_shards1_bit_identical_on_every_library_scenario(name):
    """Acceptance: the shards=1 backend equals the plain server everywhere."""
    scenario = ScenarioSpec(name=name, scale=golden_scale(name)).build()
    configs = [("distance", 100.0), ("linear", 100.0)]
    plain = FleetSimulation(_lanes(scenario, configs)).run()
    sharded = FleetSimulation(
        _lanes(scenario, configs), server=LocationService(n_shards=1)
    ).run()
    for oid in plain.results:
        a, b = plain.results[oid], sharded.results[oid]
        _assert_results_identical(a, b)
        assert a.metrics.mean_error == b.metrics.mean_error
        assert a.metrics.max_error == b.metrics.max_error


class TestQueryBenchRunner:
    def test_query_bench_record_and_artifact(self, tmp_path):
        spec = QueryBenchSpec(
            scenario="freeway",
            protocol_id="linear",
            accuracy=100.0,
            count=3,
            shards=2,
            scale=0.05,
            queries_per_tick=1.0,
        )
        runner = SweepRunner()
        record = runner.run_query_bench(spec)
        assert record["objects"] == 3
        assert record["shards"] == 2
        assert record["workload"]["queries"] > 0
        assert len(record["per_shard"]) == 2
        assert record["service"]["queries"] == record["workload"]["queries"]
        path = runner.write_query_bench_artifact(record, "qb_test", out_dir=str(tmp_path))
        import json

        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["name"] == "qb_test"
        assert payload["objects"] == 3

    def test_mix_defaults_to_scenario_mix(self):
        spec = QueryBenchSpec(scenario="walking")
        workload = spec.build_workload()
        assert workload.mix == default_query_mix("walking")
