"""Streaming OpenStreetMap extract parsing and tag normalisation.

The first stage of the real-map ingestion pipeline: turn an OSM extract
(`.osm` XML as produced by the OSM editing API, Overpass ``[out:xml]`` or
JOSM, or Overpass ``[out:json]``) into an :class:`OSMNetwork` — the raw
highway ways and the nodes they reference, with the OSM tag soup normalised
into the attributes the simulation understands:

* ``highway=*`` values map onto the repo's coarse
  :class:`~repro.roadmap.elements.RoadClass` taxonomy (see
  :data:`HIGHWAY_CLASSES`; unknown values drop the way),
* ``maxspeed=*`` is parsed into metres per second with unit handling
  (``50``, ``50 km/h``, ``30 mph``, ``walk``, ``none``; unparseable values
  fall back to the class default),
* ``oneway=*`` (plus the implicit motorway / roundabout conventions) is
  normalised to forward / both / reverse.

The XML parser is *streaming* (``xml.etree.ElementTree.iterparse`` with
element eviction), so city-scale extracts are ingested in one pass without
materialising the document tree.

The second stage, :func:`project_network`, maps the WGS-84 node coordinates
into the local planar metre frame the whole engine works in, reusing
:class:`repro.geo.geodesy.LocalProjection` anchored at the extract's centre
(or a caller-supplied origin, so adjacent extracts can share one frame).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, Iterable, List, Mapping, Optional, Tuple, Union
from xml.etree import ElementTree

import numpy as np

from repro.geo.geodesy import LocalProjection
from repro.roadmap.elements import RoadClass

#: ``highway=*`` values accepted by the importer, mapped onto the coarse
#: road-class taxonomy.  Anything not listed here (``proposed``, ``razed``,
#: ``bus_stop``, …) is skipped and counted in the parse statistics.  The
#: table doubles as the README's tag-normalisation reference.
HIGHWAY_CLASSES: Dict[str, RoadClass] = {
    "motorway": RoadClass.MOTORWAY,
    "motorway_link": RoadClass.MOTORWAY,
    "trunk": RoadClass.MOTORWAY,
    "trunk_link": RoadClass.MOTORWAY,
    "primary": RoadClass.PRIMARY,
    "primary_link": RoadClass.PRIMARY,
    "secondary": RoadClass.SECONDARY,
    "secondary_link": RoadClass.SECONDARY,
    "tertiary": RoadClass.SECONDARY,
    "tertiary_link": RoadClass.SECONDARY,
    "unclassified": RoadClass.RESIDENTIAL,
    "residential": RoadClass.RESIDENTIAL,
    "living_street": RoadClass.RESIDENTIAL,
    "service": RoadClass.RESIDENTIAL,
    "track": RoadClass.RESIDENTIAL,
    "footway": RoadClass.FOOTPATH,
    "pedestrian": RoadClass.FOOTPATH,
    "path": RoadClass.FOOTPATH,
    "steps": RoadClass.FOOTPATH,
    "cycleway": RoadClass.FOOTPATH,
}

#: ``maxspeed`` values without a number (the parser maps them explicitly
#: rather than guessing): ``none`` (German autobahn, no limit — fall back to
#: the class default) and ``walk`` (walking pace).
_MAXSPEED_WORDS: Dict[str, Optional[float]] = {
    "none": None,
    "signals": None,
    "variable": None,
    "walk": 7.0 / 3.6,
}

_MPH_TO_MS = 1.609344 / 3.6
_KMH_TO_MS = 1.0 / 3.6

#: Normalised travel directions of a way.
ONEWAY_FORWARD = "forward"
ONEWAY_BOTH = "both"
ONEWAY_REVERSE = "reverse"


def parse_maxspeed(value: Optional[str]) -> Optional[float]:
    """Parse an OSM ``maxspeed`` tag into metres per second.

    Returns ``None`` when the tag is absent or carries no usable number
    (``none``, ``signals``, country presets, garbage); the caller then falls
    back to the road-class default, the same convention commercial
    navigation maps use.
    """
    if value is None:
        return None
    text = value.strip().lower()
    if not text:
        return None
    if text in _MAXSPEED_WORDS:
        return _MAXSPEED_WORDS[text]
    # Multi-valued tags ("50; 30", lane lists) use the first component.
    text = text.split(";")[0].strip()
    factor = _KMH_TO_MS
    for suffix, unit_factor in (("mph", _MPH_TO_MS), ("km/h", _KMH_TO_MS), ("kmh", _KMH_TO_MS)):
        if text.endswith(suffix):
            text = text[: -len(suffix)].strip()
            factor = unit_factor
            break
    try:
        speed = float(text)
    except ValueError:
        return None
    if speed <= 0:
        return None
    return speed * factor


def parse_oneway(tags: Mapping[str, str], road_class: RoadClass) -> str:
    """Normalise the ``oneway`` convention of a way.

    Returns one of :data:`ONEWAY_FORWARD`, :data:`ONEWAY_BOTH`,
    :data:`ONEWAY_REVERSE`.  Motorways and roundabouts are one-way by OSM
    convention even without an explicit tag.
    """
    value = tags.get("oneway", "").strip().lower()
    if value in ("yes", "true", "1"):
        return ONEWAY_FORWARD
    if value in ("-1", "reverse"):
        return ONEWAY_REVERSE
    if value in ("no", "false", "0"):
        return ONEWAY_BOTH
    # Implicit conventions when the tag is absent or unrecognised.
    if tags.get("junction", "").strip().lower() in ("roundabout", "circular"):
        return ONEWAY_FORWARD
    highway = tags.get("highway", "").strip().lower()
    if highway in ("motorway", "motorway_link"):
        return ONEWAY_FORWARD
    return ONEWAY_BOTH


@dataclass(frozen=True)
class OSMNode:
    """One OSM node: identifier plus WGS-84 position."""

    id: int
    lat: float
    lon: float


@dataclass(frozen=True)
class OSMWay:
    """One highway way with normalised attributes.

    ``nodes`` are the referenced node ids in way order; ``oneway`` is one of
    the normalised directions (reverse-oriented ways are flipped to forward
    by :func:`normalize_way`, so downstream stages only ever see ``forward``
    or ``both``).
    """

    id: int
    nodes: Tuple[int, ...]
    road_class: RoadClass
    speed_limit: Optional[float]
    oneway: str
    name: str = ""


@dataclass
class ParseStats:
    """Counters describing what the parser saw and kept."""

    nodes: int = 0
    ways: int = 0
    highway_ways: int = 0
    kept_ways: int = 0
    skipped_unknown_class: int = 0
    skipped_degenerate: int = 0
    missing_node_refs: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "nodes": self.nodes,
            "ways": self.ways,
            "highway_ways": self.highway_ways,
            "kept_ways": self.kept_ways,
            "skipped_unknown_class": self.skipped_unknown_class,
            "skipped_degenerate": self.skipped_degenerate,
            "missing_node_refs": self.missing_node_refs,
        }


@dataclass
class OSMNetwork:
    """The raw road network of one extract: highway ways plus their nodes.

    ``nodes`` holds only nodes actually referenced by a kept way — the
    parser drops the (typically vast) remainder of the extract.
    """

    nodes: Dict[int, OSMNode] = field(default_factory=dict)
    ways: List[OSMWay] = field(default_factory=list)
    stats: ParseStats = field(default_factory=ParseStats)

    def bounds_geodetic(self) -> Tuple[float, float, float, float]:
        """``(min_lat, min_lon, max_lat, max_lon)`` over the kept nodes."""
        if not self.nodes:
            raise ValueError("the extract contains no usable highway network")
        lats = [n.lat for n in self.nodes.values()]
        lons = [n.lon for n in self.nodes.values()]
        return (min(lats), min(lons), max(lats), max(lons))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OSMNetwork({len(self.nodes)} nodes, {len(self.ways)} ways)"


def normalize_way(
    way_id: int, refs: Iterable[int], tags: Mapping[str, str]
) -> Optional[OSMWay]:
    """Normalise one raw way; ``None`` when it is not a usable road.

    Reverse one-way ways come out flipped to forward orientation so the
    conditioning stage never has to reason about ``-1``.
    """
    highway = tags.get("highway", "").strip().lower()
    if not highway:
        return None
    road_class = HIGHWAY_CLASSES.get(highway)
    if road_class is None:
        return None
    refs = list(refs)
    oneway = parse_oneway(tags, road_class)
    if oneway == ONEWAY_REVERSE:
        refs.reverse()
        oneway = ONEWAY_FORWARD
    return OSMWay(
        id=way_id,
        nodes=tuple(refs),
        road_class=road_class,
        speed_limit=parse_maxspeed(tags.get("maxspeed")),
        oneway=oneway,
        name=tags.get("name", ""),
    )


def _finish_network(
    nodes: Dict[int, OSMNode], raw_ways: List[OSMWay], stats: ParseStats
) -> OSMNetwork:
    """Resolve node references, drop degenerates, forget unused nodes."""
    network = OSMNetwork(stats=stats)
    for way in raw_ways:
        refs: List[int] = []
        for ref in way.nodes:
            if ref not in nodes:
                stats.missing_node_refs += 1
                continue
            # Collapse immediately repeated refs (OSM data quirk) that would
            # become zero-length segments.
            if refs and refs[-1] == ref:
                continue
            refs.append(ref)
        if len(refs) < 2:
            stats.skipped_degenerate += 1
            continue
        stats.kept_ways += 1
        network.ways.append(
            OSMWay(
                id=way.id,
                nodes=tuple(refs),
                road_class=way.road_class,
                speed_limit=way.speed_limit,
                oneway=way.oneway,
                name=way.name,
            )
        )
        for ref in refs:
            if ref not in network.nodes:
                network.nodes[ref] = nodes[ref]
    return network


def parse_osm_xml(source: Union[str, Path, IO[bytes], IO[str]]) -> OSMNetwork:
    """Parse an OSM XML extract in one streaming pass.

    ``source`` may be a filesystem path, an open file object, or the
    document text itself (detected by a leading ``<``).
    """
    if isinstance(source, str) and source.lstrip().startswith("<"):
        source = io.StringIO(source)
    stats = ParseStats()
    nodes: Dict[int, OSMNode] = {}
    raw_ways: List[OSMWay] = []
    # Way children accumulate between start and end events; nodes are
    # evicted from the element tree as soon as their end event fires, so
    # memory stays proportional to the kept network, not the extract.
    for _, element in ElementTree.iterparse(source, events=("end",)):
        if element.tag == "node":
            stats.nodes += 1
            node_id = int(element.attrib["id"])
            nodes[node_id] = OSMNode(
                id=node_id,
                lat=float(element.attrib["lat"]),
                lon=float(element.attrib["lon"]),
            )
            element.clear()
        elif element.tag == "way":
            stats.ways += 1
            refs = [int(nd.attrib["ref"]) for nd in element.findall("nd")]
            tags = {
                tag.attrib.get("k", ""): tag.attrib.get("v", "")
                for tag in element.findall("tag")
            }
            if "highway" in tags:
                stats.highway_ways += 1
                way = normalize_way(int(element.attrib["id"]), refs, tags)
                if way is not None:
                    raw_ways.append(way)
                else:
                    stats.skipped_unknown_class += 1
            element.clear()
        elif element.tag == "relation":
            element.clear()
    return _finish_network(nodes, raw_ways, stats)


def parse_osm_json(source: Union[str, Path, IO[str], Mapping]) -> OSMNetwork:
    """Parse an Overpass ``[out:json]`` document (``{"elements": [...]}``)."""
    if isinstance(source, Mapping):
        document = source
    elif isinstance(source, (str, Path)) and not str(source).lstrip().startswith("{"):
        document = json.loads(Path(source).read_text(encoding="utf-8"))
    elif isinstance(source, str):
        document = json.loads(source)
    else:
        document = json.load(source)
    stats = ParseStats()
    nodes: Dict[int, OSMNode] = {}
    raw_ways: List[OSMWay] = []
    for element in document.get("elements", ()):
        kind = element.get("type")
        if kind == "node":
            stats.nodes += 1
            node_id = int(element["id"])
            nodes[node_id] = OSMNode(
                id=node_id, lat=float(element["lat"]), lon=float(element["lon"])
            )
        elif kind == "way":
            stats.ways += 1
            tags = {str(k): str(v) for k, v in element.get("tags", {}).items()}
            if "highway" in tags:
                stats.highway_ways += 1
                way = normalize_way(int(element["id"]), element.get("nodes", ()), tags)
                if way is not None:
                    raw_ways.append(way)
                else:
                    stats.skipped_unknown_class += 1
    return _finish_network(nodes, raw_ways, stats)


def load_osm(source: Union[str, Path, IO[bytes], IO[str]]) -> OSMNetwork:
    """Parse an OSM extract, sniffing XML vs Overpass-JSON.

    Accepts a path, an open file object, or the document content itself.
    """
    if isinstance(source, (str, Path)):
        text = str(source).lstrip()
        if text.startswith("<"):
            return parse_osm_xml(source)
        if text.startswith("{"):
            return parse_osm_json(str(source))
        path = Path(source)
        with path.open("rb") as fh:
            head = fh.read(64).lstrip()
        if head.startswith(b"{"):
            return parse_osm_json(path)
        return parse_osm_xml(path)
    head = source.read(64)
    rest = source.read()
    text = head + rest
    if isinstance(text, bytes):
        stripped = text.lstrip()
        if stripped.startswith(b"{"):
            return parse_osm_json(text.decode("utf-8"))
        return parse_osm_xml(io.BytesIO(text))
    return load_osm(text)


# --------------------------------------------------------------------------- #
# projection stage
# --------------------------------------------------------------------------- #
@dataclass
class ProjectedNetwork:
    """An :class:`OSMNetwork` with node positions in local planar metres."""

    network: OSMNetwork
    projection: LocalProjection
    positions: Dict[int, np.ndarray]

    @property
    def origin(self) -> Tuple[float, float]:
        """The geodesic ``(lat, lon)`` anchoring the local frame."""
        return (self.projection.ref_lat, self.projection.ref_lon)


def project_network(
    network: OSMNetwork, origin: Optional[Tuple[float, float]] = None
) -> ProjectedNetwork:
    """Map the network's WGS-84 nodes into the local planar metre frame.

    ``origin`` defaults to the centre of the node bounding box; pass an
    explicit ``(lat, lon)`` to place several extracts in one shared frame.
    """
    if origin is None:
        min_lat, min_lon, max_lat, max_lon = network.bounds_geodetic()
        origin = ((min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0)
    projection = LocalProjection(ref_lat=float(origin[0]), ref_lon=float(origin[1]))
    node_ids = list(network.nodes)
    if node_ids:
        lats = np.array([network.nodes[nid].lat for nid in node_ids])
        lons = np.array([network.nodes[nid].lon for nid in node_ids])
        local = projection.to_local_array(lats, lons)
        positions = {nid: local[i] for i, nid in enumerate(node_ids)}
    else:
        positions = {}
    return ProjectedNetwork(network=network, projection=projection, positions=positions)
