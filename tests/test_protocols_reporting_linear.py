"""Unit tests for the non-DR reporting protocols and linear-prediction DR."""

import numpy as np
import pytest

from repro.protocols.base import UpdateReason
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.higher_order import HigherOrderPredictionProtocol
from repro.protocols.reporting import (
    DistanceBasedReporting,
    MovementBasedReporting,
    TimeBasedReporting,
)
from repro.sim.engine import run_simulation
from repro.traces.trace import Trace


def feed(protocol, trace):
    """Run a protocol over a trace and return the emitted messages."""
    messages = []
    for sample in trace:
        message = protocol.observe(sample.time, sample.position)
        if message is not None:
            messages.append(message)
    return messages


class TestDistanceBasedReporting:
    def test_update_count_matches_threshold(self, straight_trace):
        # 1200 m at 20 m/s with a 100 m threshold: one update per 100 m
        # (plus the initial one); the exact count allows the sampling grid.
        protocol = DistanceBasedReporting(accuracy=100.0)
        messages = feed(protocol, straight_trace)
        assert 10 <= len(messages) <= 13

    def test_no_update_when_stationary(self):
        times = np.arange(0.0, 50.0)
        trace = Trace(times, np.zeros((50, 2)))
        protocol = DistanceBasedReporting(accuracy=50.0)
        messages = feed(protocol, trace)
        assert len(messages) == 1  # only the initial update

    def test_threshold_scales_update_count(self, straight_trace):
        few = len(feed(DistanceBasedReporting(accuracy=400.0), straight_trace))
        many = len(feed(DistanceBasedReporting(accuracy=50.0), straight_trace))
        assert many > few

    def test_sensor_uncertainty_tightens_threshold(self, straight_trace):
        plain = len(feed(DistanceBasedReporting(accuracy=100.0), straight_trace))
        cautious = len(
            feed(DistanceBasedReporting(accuracy=100.0, sensor_uncertainty=50.0), straight_trace)
        )
        assert cautious >= plain

    def test_server_error_bounded(self, straight_trace):
        result = run_simulation(DistanceBasedReporting(accuracy=100.0), straight_trace)
        assert result.metrics.max_error <= 100.0 + 1e-6


class TestTimeBasedReporting:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            TimeBasedReporting(accuracy=100.0, interval=0.0)

    def test_updates_every_interval(self, straight_trace):
        protocol = TimeBasedReporting(accuracy=100.0, interval=10.0)
        messages = feed(protocol, straight_trace)
        assert len(messages) == 7  # initial + one every 10 s over 60 s
        assert messages[1].reason is UpdateReason.TIMER

    def test_for_speed_constructor(self, straight_trace):
        protocol = TimeBasedReporting.for_speed(accuracy=100.0, expected_speed=20.0)
        assert protocol.interval == pytest.approx(5.0)
        result = run_simulation(protocol, straight_trace)
        assert result.metrics.max_error <= 100.0 + 1e-6

    def test_for_speed_invalid(self):
        with pytest.raises(ValueError):
            TimeBasedReporting.for_speed(accuracy=100.0, expected_speed=0.0)


class TestMovementBasedReporting:
    def test_updates_on_travelled_distance(self, l_shaped_trace):
        protocol = MovementBasedReporting(accuracy=200.0)
        messages = feed(protocol, l_shaped_trace)
        # 2000 m of travel, one update per 200 m travelled.
        assert 10 <= len(messages) <= 12

    def test_movement_counts_path_not_displacement(self):
        # Back-and-forth motion: displacement stays small but path grows.
        times = np.arange(0.0, 41.0)
        xs = 50.0 * np.abs(np.sin(times * np.pi / 10.0))
        trace = Trace(times, np.column_stack((xs, np.zeros_like(xs))))
        moved = feed(MovementBasedReporting(accuracy=100.0), trace)
        displaced = feed(DistanceBasedReporting(accuracy=100.0), trace)
        assert len(moved) > len(displaced)

    def test_reset_clears_travelled_distance(self, straight_trace):
        protocol = MovementBasedReporting(accuracy=100.0)
        feed(protocol, straight_trace)
        protocol.reset()
        assert protocol.updates_sent == 0
        messages = feed(protocol, straight_trace)
        assert messages[0].reason is UpdateReason.INITIAL


class TestLinearPredictionProtocol:
    def test_no_updates_for_constant_velocity(self, straight_trace):
        protocol = LinearPredictionProtocol(accuracy=50.0, estimation_window=2)
        messages = feed(protocol, straight_trace)
        # Perfectly linear motion: after the initial update and one settling
        # update (the first state has speed 0), the prediction is exact.
        assert len(messages) <= 2

    def test_turn_triggers_update(self, l_shaped_trace):
        protocol = LinearPredictionProtocol(accuracy=50.0, estimation_window=2)
        messages = feed(protocol, l_shaped_trace)
        threshold_updates = [m for m in messages if m.reason is UpdateReason.THRESHOLD]
        assert len(threshold_updates) >= 1
        # The turn happens at t=50 and must force at least one update after it
        # (plus possibly one settling update right after the start, while the
        # speed estimate is still warming up).
        assert any(m.state.time > 50.0 for m in threshold_updates)
        assert all(m.state.time <= 5.0 or m.state.time > 50.0 for m in threshold_updates)

    def test_fewer_updates_than_distance_based(self, l_shaped_trace):
        linear = feed(LinearPredictionProtocol(accuracy=100.0, estimation_window=2), l_shaped_trace)
        distance = feed(DistanceBasedReporting(accuracy=100.0), l_shaped_trace)
        assert len(linear) < len(distance)

    def test_server_error_bounded_by_accuracy(self, l_shaped_trace):
        protocol = LinearPredictionProtocol(accuracy=80.0, estimation_window=2)
        result = run_simulation(protocol, l_shaped_trace)
        # One sample interval of slack: the deviation is checked at 1 Hz.
        assert result.metrics.max_error <= 80.0 + 20.0 + 1e-6


class TestHigherOrderProtocol:
    def test_acceleration_window_validation(self):
        with pytest.raises(ValueError):
            HigherOrderPredictionProtocol(accuracy=100.0, acceleration_window=1)

    def test_acceleration_helps_during_speedup(self):
        # A steadily accelerating object: quadratic prediction needs fewer updates.
        times = np.arange(0.0, 120.0)
        xs = 0.5 * 0.8 * times**2
        trace = Trace(times, np.column_stack((xs, np.zeros_like(xs))))
        linear = feed(LinearPredictionProtocol(accuracy=100.0, estimation_window=2), trace)
        quadratic = feed(
            HigherOrderPredictionProtocol(accuracy=100.0, estimation_window=2), trace
        )
        assert len(quadratic) <= len(linear)

    def test_state_carries_acceleration(self):
        protocol = HigherOrderPredictionProtocol(accuracy=10.0, estimation_window=2)
        protocol.observe(0.0, (0.0, 0.0))
        protocol.observe(1.0, (5.0, 0.0))
        message = protocol.observe(2.0, (30.0, 0.0))
        if message is not None:
            assert message.state.acceleration is not None

    def test_reset(self):
        protocol = HigherOrderPredictionProtocol(accuracy=10.0)
        protocol.observe(0.0, (0.0, 0.0))
        protocol.reset()
        assert protocol.updates_sent == 0
