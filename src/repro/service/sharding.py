"""Spatial sharding policies for the location-service tier.

A sharding policy maps positions to shard indices so that a
:class:`~repro.service.facade.LocationService` can partition its tracked
objects across several :class:`~repro.service.server.LocationServer` shards.
Policies are pluggable; the default :class:`GridHashPolicy` hashes a coarse
spatial grid cell onto the shard ring, which spreads load evenly without
requiring any knowledge of the covered area.

Every mapping is deterministic (no process-randomised hashes), so shard
assignments — and with them per-shard load counters and query routes — are
reproducible across runs and across processes.
"""

from __future__ import annotations

import abc
import math
import zlib
from typing import List

from repro.geo.bbox import BoundingBox
from repro.geo.vec import Vec2, as_vec

#: Cell counts above this threshold make per-cell shard routing pointless:
#: a hash-distributed box that large touches (nearly) every shard anyway.
_DENSE_BOX_CELLS = 64


class ShardingPolicy(abc.ABC):
    """Maps object positions (and ids) to shard indices in ``[0, n_shards)``."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.n_shards = int(n_shards)

    @abc.abstractmethod
    def shard_for_point(self, point: Vec2) -> int:
        """The shard responsible for an object predicted at *point*."""

    def shard_for_id(self, object_id: str) -> int:
        """Stable fallback shard for objects that have not reported yet.

        Uses CRC32 rather than :func:`hash` so the assignment is identical
        in every process (``PYTHONHASHSEED`` randomises string hashes).
        """
        return zlib.crc32(object_id.encode("utf-8")) % self.n_shards

    @abc.abstractmethod
    def shards_for_box(self, box: BoundingBox) -> List[int]:
        """Every shard that may hold an object positioned inside *box*.

        The result may be a superset of the shards actually holding matching
        objects (routing is conservative), but must never miss one.
        """

    def all_shards(self) -> List[int]:
        """All shard indices (the trivially correct routing answer)."""
        return list(range(self.n_shards))


class GridHashPolicy(ShardingPolicy):
    """Hash a coarse spatial grid cell onto the shard ring.

    Parameters
    ----------
    n_shards:
        Number of shards to spread objects over.
    region_size:
        Edge length of a routing cell in metres.  Cells should be comparable
        to (or larger than) typical query extents so that a range query only
        touches a few shards.
    """

    def __init__(self, n_shards: int, region_size: float = 2000.0):
        super().__init__(n_shards)
        if region_size <= 0:
            raise ValueError("region_size must be positive")
        self.region_size = float(region_size)

    def cell_for_point(self, point: Vec2) -> tuple[int, int]:
        """The routing cell containing *point*."""
        p = as_vec(point)
        return (
            int(math.floor(p[0] / self.region_size)),
            int(math.floor(p[1] / self.region_size)),
        )

    def shard_for_cell(self, cell: tuple[int, int]) -> int:
        """Deterministic spatial hash of a routing cell onto the shard ring."""
        cx, cy = cell
        # Classic two-prime spatial hash; Python's % keeps the result
        # non-negative for negative cell coordinates.
        return ((cx * 73856093) ^ (cy * 19349663)) % self.n_shards

    def shard_for_point(self, point: Vec2) -> int:
        return self.shard_for_cell(self.cell_for_point(point))

    def shards_for_box(self, box: BoundingBox) -> List[int]:
        if self.n_shards == 1:
            return [0]
        min_cx, min_cy = self.cell_for_point((box.min_x, box.min_y))
        max_cx, max_cy = self.cell_for_point((box.max_x, box.max_y))
        n_cells = (max_cx - min_cx + 1) * (max_cy - min_cy + 1)
        if n_cells >= max(_DENSE_BOX_CELLS, 8 * self.n_shards):
            return self.all_shards()
        shards = set()
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                shards.add(self.shard_for_cell((cx, cy)))
                if len(shards) == self.n_shards:
                    return self.all_shards()
        return sorted(shards)
