"""Unit tests for repro.traces.noise."""

import numpy as np
import pytest

from repro.traces.noise import GaussMarkovNoise, GaussianNoise, NoNoise, dgps_noise
from repro.traces.trace import Trace


@pytest.fixture()
def long_trace():
    times = np.arange(0.0, 2000.0)
    positions = np.column_stack((times * 10.0, np.zeros_like(times)))
    return Trace(times, positions)


class TestNoNoise:
    def test_identity(self, long_trace):
        noisy = NoNoise().apply(long_trace)
        np.testing.assert_allclose(noisy.positions, long_trace.positions)
        assert NoNoise().typical_error == 0.0


class TestGaussianNoise:
    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            GaussianNoise(sigma=-1.0)

    def test_zero_sigma_is_identity(self, long_trace):
        noisy = GaussianNoise(sigma=0.0, seed=0).apply(long_trace)
        np.testing.assert_allclose(noisy.positions, long_trace.positions)

    def test_error_statistics(self, long_trace):
        sigma = 3.0
        noisy = GaussianNoise(sigma=sigma, seed=1).apply(long_trace)
        errors = noisy.positions - long_trace.positions
        assert abs(errors.mean()) < 0.5
        assert errors.std() == pytest.approx(sigma, rel=0.1)

    def test_preserves_times_and_length(self, long_trace):
        noisy = GaussianNoise(sigma=2.0, seed=2).apply(long_trace)
        assert len(noisy) == len(long_trace)
        np.testing.assert_allclose(noisy.times, long_trace.times)

    def test_typical_error(self):
        assert GaussianNoise(sigma=4.2).typical_error == 4.2


class TestGaussMarkovNoise:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussMarkovNoise(sigma=-1.0)
        with pytest.raises(ValueError):
            GaussMarkovNoise(correlation_time=0.0)

    def test_stationary_sigma(self, long_trace):
        sigma = 2.5
        noisy = GaussMarkovNoise(sigma=sigma, correlation_time=30.0, seed=3).apply(long_trace)
        errors = noisy.positions - long_trace.positions
        assert errors.std() == pytest.approx(sigma, rel=0.25)

    def test_errors_are_correlated_in_time(self, long_trace):
        noisy = GaussMarkovNoise(sigma=3.0, correlation_time=120.0, seed=4).apply(long_trace)
        errors = (noisy.positions - long_trace.positions)[:, 0]
        # Lag-1 autocorrelation must be clearly positive (white noise would be ~0).
        e = errors - errors.mean()
        autocorr = float(np.dot(e[:-1], e[1:]) / np.dot(e, e))
        assert autocorr > 0.8

    def test_zero_sigma_identity(self, long_trace):
        noisy = GaussMarkovNoise(sigma=0.0, seed=5).apply(long_trace)
        np.testing.assert_allclose(noisy.positions, long_trace.positions)

    def test_deterministic_with_seed(self, long_trace):
        a = GaussMarkovNoise(sigma=2.0, seed=6).apply(long_trace)
        b = GaussMarkovNoise(sigma=2.0, seed=6).apply(long_trace)
        np.testing.assert_allclose(a.positions, b.positions)

    def test_dgps_preset(self):
        model = dgps_noise(seed=0)
        assert 2.0 <= model.typical_error <= 5.0
