"""Parameter sweeps over the requested accuracy.

The paper's figures plot updates per hour against the accuracy requested at
the server (20-500 m for cars, 20-250 m for a walking person), one curve per
protocol.  :func:`run_accuracy_sweep` produces exactly those curves for one
scenario and one protocol configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.mobility.scenarios import Scenario
from repro.protocols.base import UpdateProtocol
from repro.sim.config import SimulationConfig
from repro.sim.engine import ProtocolSimulation
from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class SweepPoint:
    """One point of a protocol's curve: a requested accuracy and its result."""

    accuracy: float
    result: SimulationResult

    @property
    def updates_per_hour(self) -> float:
        """Shortcut to the headline metric."""
        return self.result.updates_per_hour


def run_accuracy_sweep(
    scenario: Scenario,
    protocol_factory: Callable[[float], UpdateProtocol],
    accuracies: Optional[Sequence[float]] = None,
) -> List[SweepPoint]:
    """Run *protocol_factory* over every requested accuracy of the scenario.

    Parameters
    ----------
    scenario:
        The movement scenario (provides sensor/truth traces and the default
        accuracy sweep).
    protocol_factory:
        Callable mapping a requested accuracy ``us`` to a fresh protocol
        instance.  A fresh instance per point is required because protocols
        are stateful.
    accuracies:
        Override of the accuracy values; defaults to the scenario's sweep.
    """
    points: List[SweepPoint] = []
    for us in accuracies if accuracies is not None else scenario.us_values:
        protocol = protocol_factory(float(us))
        result = ProtocolSimulation(
            protocol=protocol,
            sensor_trace=scenario.sensor_trace,
            truth_trace=scenario.true_trace,
        ).run()
        points.append(SweepPoint(accuracy=float(us), result=result))
    return points


def run_config_sweep(
    scenario: Scenario,
    protocol_id: str,
    accuracies: Optional[Sequence[float]] = None,
    **config_kwargs,
) -> List[SweepPoint]:
    """Sweep a protocol identified by its :class:`SimulationConfig` id."""

    def factory(us: float) -> UpdateProtocol:
        config = SimulationConfig(protocol_id=protocol_id, accuracy=us, **config_kwargs)
        return config.build_protocol(scenario)

    return run_accuracy_sweep(scenario, factory, accuracies)
