"""Property-based tests for the geometry substrate (hypothesis)."""

import math

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.geo.angles import angle_between, bearing, bearing_to_unit, unit_to_bearing
from repro.geo.polyline import Polyline
from repro.geo.segment import Segment
from repro.geo.vec import distance

coordinate = st.floats(min_value=-50_000.0, max_value=50_000.0, allow_nan=False)
point = st.tuples(coordinate, coordinate)


@settings(max_examples=100, deadline=None)
@given(a=point, b=point, q=point)
def test_segment_projection_is_closest_vertexwise(a, b, q):
    """The projection is at least as close as either endpoint."""
    seg = Segment(a, b)
    d = seg.distance_to(q)
    assert d <= distance(a, q) + 1e-6
    assert d <= distance(b, q) + 1e-6


@settings(max_examples=100, deadline=None)
@given(a=point, b=point, q=point)
def test_segment_projection_lies_on_segment(a, b, q):
    seg = Segment(a, b)
    proj = seg.project(q)
    # The projected point is within the segment's bounding box (with slack)
    # and its offset is consistent with point_at.
    offset = seg.project_offset(q)
    assert 0.0 <= offset <= seg.length + 1e-9
    np.testing.assert_allclose(seg.point_at(offset), proj, atol=1e-6)


@settings(max_examples=100, deadline=None)
@given(points=st.lists(point, min_size=2, max_size=12), q=point)
def test_polyline_projection_not_worse_than_any_vertex(points, q):
    poly = Polyline(points)
    _, _, dist = poly.project(q)
    best_vertex = min(distance(p, q) for p in points)
    assert dist <= best_vertex + 1e-6


@settings(max_examples=100, deadline=None)
@given(points=st.lists(point, min_size=2, max_size=12), q=point)
def test_polyline_projection_offset_consistency(points, q):
    poly = Polyline(points)
    projected, offset, dist = poly.project(q)
    assert 0.0 <= offset <= poly.length + 1e-6
    np.testing.assert_allclose(poly.point_at(offset), projected, atol=1e-5)
    assert dist == np.hypot(*(projected - np.asarray(q, dtype=float))).item() or np.isclose(
        dist, float(np.hypot(*(projected - np.asarray(q, dtype=float)))), atol=1e-6
    )


@settings(max_examples=100, deadline=None)
@given(points=st.lists(point, min_size=2, max_size=12))
def test_polyline_length_equals_sum_of_segments(points):
    poly = Polyline(points)
    total = sum(seg.length for seg in poly.segments())
    assert math.isclose(poly.length, total, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(points=st.lists(point, min_size=2, max_size=10))
def test_polyline_reverse_preserves_length(points):
    poly = Polyline(points)
    assert math.isclose(poly.reversed().length, poly.length, rel_tol=1e-12, abs_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(points=st.lists(point, min_size=2, max_size=10), fraction=st.floats(0.0, 1.0))
def test_point_at_is_on_or_near_some_segment(points, fraction):
    poly = Polyline(points)
    target = poly.point_at(fraction * poly.length)
    # The generated point must lie (numerically) on the polyline.
    _, _, dist = poly.project(target)
    assert dist < 1e-6 * max(1.0, poly.length)


@settings(max_examples=100, deadline=None)
@given(b=st.floats(min_value=0.0, max_value=2 * math.pi - 1e-9))
def test_bearing_unit_roundtrip(b):
    assert math.isclose(unit_to_bearing(bearing_to_unit(b)), b, abs_tol=1e-9)


@settings(max_examples=100, deadline=None)
@given(a=point, b=point)
def test_bearing_reverse_differs_by_pi(a, b):
    assume(distance(a, b) > 1e-6)
    forward = bearing(a, b)
    backward = bearing(b, a)
    diff = abs((forward - backward + math.pi) % (2 * math.pi) - math.pi)
    assert math.isclose(diff, math.pi, abs_tol=1e-6) or math.isclose(diff, -math.pi, abs_tol=1e-6)


@settings(max_examples=100, deadline=None)
@given(u=point, v=point)
def test_angle_between_is_symmetric_and_bounded(u, v):
    angle_uv = angle_between(u, v)
    angle_vu = angle_between(v, u)
    assert math.isclose(angle_uv, angle_vu, abs_tol=1e-9)
    assert 0.0 <= angle_uv <= math.pi + 1e-12
