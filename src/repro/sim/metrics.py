"""Metrics collected by a protocol simulation.

The paper's primary metric is the number of update messages per hour for a
requested accuracy; the secondary one is the accuracy actually delivered at
the server.  :class:`AccuracyMetrics` accumulates both, plus bandwidth.
Error samples are stored as NumPy array chunks and every summary statistic
is computed vectorised from the consolidated array, so recording a whole
trace's worth of errors at once (:meth:`record_batch`, the fleet engine's
path) costs one array append — and produces exactly the same statistics as
recording the samples one by one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

_EMPTY = np.zeros(0)


class AccuracyMetrics:
    """Accumulator of server-side position error samples."""

    def __init__(self) -> None:
        self._chunks: List[np.ndarray] = []
        self._pending: List[float] = []
        self._consolidated: Optional[np.ndarray] = None
        self._bound: Optional[float] = None
        # Violations folded in via merge(); counted under each source's own
        # bound, which is what makes mixed-accuracy fleet aggregates honest.
        self._merged_violations = 0

    def set_bound(self, bound: float) -> None:
        """Define the accuracy bound used to count violations (``us``)."""
        self._bound = float(bound)

    @property
    def bound(self) -> Optional[float]:
        """The configured accuracy bound ``us`` (or ``None``)."""
        return self._bound

    def record(self, error: float) -> None:
        """Record one server-vs-truth position error sample (metres)."""
        self._pending.append(float(error))
        self._consolidated = None

    def record_batch(self, errors) -> None:
        """Record many error samples at once (the engine's vectorised path)."""
        arr = np.array(errors, dtype=float).ravel()
        if arr.size == 0:
            return
        self._flush_pending()
        self._chunks.append(arr)
        self._consolidated = None

    def merge(self, other: "AccuracyMetrics") -> None:
        """Fold *other*'s samples into this accumulator (fleet aggregation).

        The other accumulator's violations — counted under *its own* bound —
        are carried over, so a bound-less pooled fleet metric reports the
        fraction of samples that violated their respective object's
        requested accuracy.  Setting a bound on the aggregate overrides
        this: every pooled sample is then re-judged under that bound.
        """
        self.record_batch(other.errors)
        self._merged_violations += other.violation_count

    def _flush_pending(self) -> None:
        if self._pending:
            self._chunks.append(np.array(self._pending, dtype=float))
            self._pending = []

    @property
    def errors(self) -> np.ndarray:
        """All recorded error samples, in recording order."""
        if self._consolidated is None:
            self._flush_pending()
            if not self._chunks:
                self._consolidated = _EMPTY
            elif len(self._chunks) == 1:
                self._consolidated = self._chunks[0]
            else:
                self._consolidated = np.concatenate(self._chunks)
                self._chunks = [self._consolidated]
        return self._consolidated

    # ------------------------------------------------------------------ #
    # summary statistics
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return int(self.errors.size)

    @property
    def mean_error(self) -> float:
        """Mean position error in metres."""
        errors = self.errors
        return float(errors.mean()) if errors.size else 0.0

    @property
    def rms_error(self) -> float:
        """Root-mean-square position error in metres."""
        errors = self.errors
        return float(np.sqrt((errors * errors).mean())) if errors.size else 0.0

    @property
    def max_error(self) -> float:
        """Maximum position error in metres."""
        errors = self.errors
        return float(errors.max()) if errors.size else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0-100) of the error distribution."""
        errors = self.errors
        if errors.size == 0:
            return 0.0
        return float(np.percentile(errors, q))

    @property
    def violation_count(self) -> int:
        """Samples whose error exceeded the relevant accuracy bound.

        With an own bound set, every sample — including merged ones — is
        judged against it.  Without one, directly recorded samples are
        unbounded (they cannot violate) and the count is the total carried
        over from :meth:`merge`, where each source's samples were judged
        under that source's own bound.
        """
        errors = self.errors
        if errors.size == 0:
            return 0
        if self._bound is not None:
            return int((errors > self._bound).sum())
        return self._merged_violations

    @property
    def violation_fraction(self) -> float:
        """Fraction of samples whose error exceeded the accuracy bound."""
        errors = self.errors
        if errors.size == 0:
            return 0.0
        return self.violation_count / errors.size

    def as_dict(self) -> Dict[str, float]:
        """Summary dictionary used by reports."""
        return {
            "samples": float(self.count),
            "mean_error_m": self.mean_error,
            "rms_error_m": self.rms_error,
            "p95_error_m": self.percentile(95.0),
            "max_error_m": self.max_error,
            "violation_fraction": self.violation_fraction,
        }


@dataclass
class SimulationResult:
    """Outcome of running one protocol over one trace.

    Attributes
    ----------
    protocol_name:
        Human-readable protocol name.
    accuracy:
        The requested accuracy ``us`` in metres.
    duration_h:
        Simulated duration in hours.
    updates:
        Number of update messages counted by the evaluation (the initial
        update is included, as in the paper's counting of transmitted
        messages).
    bytes_sent:
        Total update payload bytes transmitted.
    metrics:
        Server-side accuracy metrics.
    update_reasons:
        Histogram of why updates were sent.
    matcher_stats:
        Map-matcher counters (empty for protocols without a matcher).
    service_stats:
        Serving-tier counters attached by fleet runs against a sharded
        :class:`~repro.service.facade.LocationService` backend (e.g. the
        shard that ended up responsible for the object).  Empty — and
        absent from :meth:`as_dict` — for plain single-server runs, so
        pinned golden metrics are unaffected.
    """

    protocol_name: str
    accuracy: float
    duration_h: float
    updates: int
    bytes_sent: int
    metrics: AccuracyMetrics
    update_reasons: Dict[str, int] = field(default_factory=dict)
    matcher_stats: Dict[str, int] = field(default_factory=dict)
    service_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def updates_per_hour(self) -> float:
        """The paper's headline metric: update messages per hour."""
        if self.duration_h <= 0:
            return 0.0
        return self.updates / self.duration_h

    @property
    def bytes_per_hour(self) -> float:
        """Transmitted payload bytes per hour."""
        if self.duration_h <= 0:
            return 0.0
        return self.bytes_sent / self.duration_h

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary used by the report renderer and benchmarks."""
        out: Dict[str, object] = {
            "protocol": self.protocol_name,
            "us_m": self.accuracy,
            "updates": self.updates,
            "updates_per_hour": round(self.updates_per_hour, 2),
            "bytes_per_hour": round(self.bytes_per_hour, 1),
            "duration_h": round(self.duration_h, 3),
        }
        out.update({k: round(v, 2) for k, v in self.metrics.as_dict().items()})
        if self.service_stats:
            out.update({f"svc_{k}": v for k, v in self.service_stats.items()})
        return out
