"""Table 1: characteristics of the traces used for the simulation.

The paper's Table 1 lists length, duration, average speed and maximum speed
of the four recorded GPS traces.  :func:`table1` produces the same table for
the synthetic scenarios, together with the paper's reference values so the
report can show the reproduction side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.scenarios import get_scenario
from repro.mobility.scenarios import ScenarioName
from repro.traces.stats import TraceStatistics, compute_statistics

#: The values printed in the paper's Table 1, for comparison in reports.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    ScenarioName.FREEWAY.value: {
        "length_km": 163.0,
        "duration_h": 1.583,
        "average_speed_kmh": 103.0,
        "max_speed_kmh": 155.0,
    },
    ScenarioName.INTERURBAN.value: {
        "length_km": 99.0,
        "duration_h": 1.65,
        "average_speed_kmh": 60.0,
        "max_speed_kmh": 116.0,
    },
    ScenarioName.CITY.value: {
        "length_km": 89.0,
        "duration_h": 2.417,
        "average_speed_kmh": 34.0,
        "max_speed_kmh": 65.0,
    },
    ScenarioName.WALKING.value: {
        "length_km": 10.0,
        "duration_h": 2.133,
        "average_speed_kmh": 4.6,
        "max_speed_kmh": 7.2,
    },
}


@dataclass(frozen=True)
class Table1Row:
    """One row of the reproduced Table 1, with the paper's values attached."""

    scenario: str
    measured: TraceStatistics
    paper: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for the report renderer."""
        return {
            "trace": self.scenario,
            "length [km]": round(self.measured.length_km, 1),
            "paper length [km]": self.paper["length_km"],
            "duration [h]": round(self.measured.duration_h, 2),
            "paper duration [h]": round(self.paper["duration_h"], 2),
            "avg speed [km/h]": round(self.measured.average_speed_kmh, 1),
            "paper avg speed [km/h]": self.paper["average_speed_kmh"],
            "max speed [km/h]": round(self.measured.smoothed_max_speed_kmh, 1),
            "paper max speed [km/h]": self.paper["max_speed_kmh"],
        }


def table1(scale: float = 1.0) -> List[Table1Row]:
    """Reproduce Table 1 for the four scenarios at the given route scale.

    Note that length and duration scale with *scale* (they are extensive),
    while the speeds are intensive and should match the paper regardless of
    scale.  Scenarios come from the shared per-process cache behind
    :func:`~repro.experiments.scenarios.get_scenario`, so a figure run in
    the same process reuses them for free.
    """
    rows: List[Table1Row] = []
    for name in ScenarioName:
        scenario = get_scenario(name, scale=scale)
        stats = compute_statistics(scenario.true_trace)
        rows.append(
            Table1Row(
                scenario=scenario.description,
                measured=stats,
                paper=PAPER_TABLE1[name.value],
            )
        )
    return rows
