"""E4 — Figure 7: freeway traffic.

Updates per hour (absolute and relative to distance-based reporting) for the
distance-based, linear-prediction and map-based protocols, with the
requested accuracy swept from 20 m to 500 m.
"""

from repro.experiments.figures import figure7

from conftest import run_once
from figure_common import assert_figure_shape, print_figure


def test_figure7_freeway(benchmark, scale):
    figure = run_once(benchmark, figure7, scale=scale)
    print_figure(figure, "Fig. 7 — freeway traffic")
    assert_figure_shape(figure, map_should_win=True)
    # The paper's headline numbers for the freeway: linear DR cuts updates by
    # up to 83% vs distance-based reporting; map-based DR cuts them by up to
    # another 60% vs linear DR.  The synthetic scenario reproduces the
    # direction and rough size of both effects.
    assert figure.reduction_vs_baseline("linear") >= 60.0
    assert figure.reduction_between("map", "linear") >= 30.0
    assert figure.reduction_vs_baseline("map") >= 80.0
