"""Big-map benchmark: streaming tiled ingest + contraction-hierarchy routing.

Generates the deterministic ~1M-node synthetic region as a tile store
(:func:`repro.ingest.tiles.write_region_tiles` — the full map never exists
in memory), streams it into a routing graph, preprocesses the contraction
hierarchy, and measures:

* **import-to-route pipeline timings** — region write, graph build, CH
  preprocessing (with shortcut counts), time to the first answered query;
* **query latency** — p50/p99 over a seeded random query set on the CH
  engine (sub-millisecond p50 is the tentpole claim, asserted);
* **speedup vs the networkx Dijkstra reference** — the same pairs answered
  by ``networkx.shortest_path`` on an equivalent ``DiGraph``; the CH
  engine must be ≥10x faster with **bit-identical** route costs, and
  link-for-link identical paths against the repo's own tie-broken
  Dijkstra (the canonical-path contract of ``RoutePlanner``).

Everything is recorded in ``BENCH_bigmap.json`` at the repository root and
guarded by ``benchmarks/check_bench_floors.py``.  Size knobs for CI /
quick local runs: ``REPRO_BENCH_BIGMAP_ROWS`` / ``_COLS`` / ``_QUERIES`` /
``_REF_QUERIES``; ``REPRO_BENCH_BIGMAP_MIN_SPEEDUP`` lowers the asserted
speedup floor for noisy shared runners and ``REPRO_BENCH_BIGMAP_MAX_P50_MS``
relaxes the asserted p50 ceiling (the recorded artifact keeps the real
targets).
"""

from __future__ import annotations

import json
import os
import platform
import random
import shutil
import statistics
import tempfile
import time

import networkx as nx

from repro.ingest.tiles import write_region_tiles
from repro.obs.metrics import LatencyRecorder
from repro.roadmap.hierarchy import (
    ContractionHierarchy,
    RoutingGraph,
    dijkstra_path,
)

from conftest import run_once

_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_bigmap.json")

#: The tentpole targets: CH at least this much faster than the networkx
#: reference, at sub-millisecond median latency.
_REQUIRED_SPEEDUP = 10.0
_REQUIRED_P50_MS = 1.0

_WEIGHT = "travel_time"


def _env_int(name, default):
    return int(os.environ.get(name, default))


def _min_speedup() -> float:
    return float(os.environ.get("REPRO_BENCH_BIGMAP_MIN_SPEEDUP", _REQUIRED_SPEEDUP))


def _max_p50_ms() -> float:
    return float(os.environ.get("REPRO_BENCH_BIGMAP_MAX_P50_MS", _REQUIRED_P50_MS))


def _query_pairs(node_ids, count, rng):
    """Seeded random (source, target) pairs, distinct endpoints."""
    pairs = []
    while len(pairs) < count:
        s = rng.choice(node_ids)
        t = rng.choice(node_ids)
        if s != t:
            pairs.append((s, t))
    return pairs


def _fold_cost(graph, link_ids):
    """Left-to-right cost accumulation — the bit-identity reference."""
    return graph.path_cost(link_ids)[0]


def run_bigmap_bench(rows, cols, queries, ref_queries, keep_tiles_dir=None):
    """The full pipeline at the given region size; returns the record."""
    tiles_dir = keep_tiles_dir or tempfile.mkdtemp(prefix="repro-bigmap-")

    # 1. Streaming region generation (tiles on disk, bounded memory).
    t0 = time.perf_counter()
    store = write_region_tiles(os.path.join(tiles_dir, "region"), rows, cols)
    region_write_seconds = time.perf_counter() - t0

    # 2. Stream the tiles into the routing graph.
    t0 = time.perf_counter()
    graph = RoutingGraph.from_links(_WEIGHT, list(store.routing_links(_WEIGHT)))
    graph_build_seconds = time.perf_counter() - t0

    # 3. Contraction-hierarchy preprocessing, including the top-of-hierarchy
    #    expansion warm-up (part of the offline phase, like the build).
    t0 = time.perf_counter()
    hierarchy = ContractionHierarchy.build(graph)
    ch_build_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    warmed_entries = hierarchy.warm_expansions()
    warm_seconds = time.perf_counter() - t0

    node_ids = graph.node_ids
    rng = random.Random(20260808)

    # 4. First query = end of the import-to-route pipeline.
    s0, t0_node = _query_pairs(node_ids, 1, rng)[0]
    t0 = time.perf_counter()
    first = hierarchy.query(s0, t0_node)
    first_query_seconds = time.perf_counter() - t0
    assert first is not None

    # 5. CH query latency distribution over a seeded random query set,
    #    summarised by the shared recorder (nearest-rank percentiles; the
    #    committed artifact's floors comfortably absorb the sub-µs shift
    #    from the old interpolated median).
    pairs = _query_pairs(node_ids, queries, rng)
    latencies_ms = []
    for s, t in pairs:
        t0 = time.perf_counter()
        hierarchy.query(s, t)
        latencies_ms.append((time.perf_counter() - t0) * 1000.0)
    query_latency = LatencyRecorder([ms / 1000.0 for ms in latencies_ms])
    p50_ms = query_latency.percentile(50.0) * 1000.0
    p99_ms = query_latency.percentile(99.0) * 1000.0

    # 6. Reference pairs: networkx Dijkstra timing + bit-identity checks.
    ref_pairs = _query_pairs(node_ids, ref_queries, rng)
    nxg = nx.DiGraph()
    for u in range(graph.num_nodes()):
        uid = node_ids[u]
        for w, _tie, v, link_id in graph.out_edges[u]:
            nxg.add_edge(uid, node_ids[v], weight=w, link_id=link_id)

    costs_identical = True
    paths_identical = True
    nx_seconds = 0.0
    ch_seconds = 0.0
    for s, t in ref_pairs:
        t0 = time.perf_counter()
        nx_nodes = nx.shortest_path(nxg, s, t, weight="weight")
        nx_seconds += time.perf_counter() - t0

        t0 = time.perf_counter()
        ch_path = hierarchy.query(s, t)
        ch_seconds += time.perf_counter() - t0

        # The repo's own tie-broken Dijkstra is the canonical-path contract:
        # identical links, identical cost, bit for bit.
        dj_path = dijkstra_path(graph, s, t)
        if ch_path.cost != dj_path.cost or ch_path.links != dj_path.links:
            paths_identical = False
        # networkx breaks ties its own way, but the region's jittered
        # weights make the optimum unique: the same link sequence must fall
        # out, and its left-to-right cost fold must match bit for bit.
        nx_links = [
            nxg.edges[a, b]["link_id"] for a, b in zip(nx_nodes, nx_nodes[1:])
        ]
        if _fold_cost(graph, nx_links) != ch_path.cost:
            costs_identical = False

    speedup = (nx_seconds / ch_seconds) if ch_seconds > 0 else None

    record = {
        "benchmark": "bigmap",
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "region": {
            "rows": rows,
            "cols": cols,
            "nodes": graph.num_nodes(),
            "links": graph.num_edges(),
            "tiles": len(store.index["tiles"]),
            "weight": _WEIGHT,
        },
        "timings": {
            "region_write_seconds": round(region_write_seconds, 3),
            "graph_build_seconds": round(graph_build_seconds, 3),
            "ch_build_seconds": round(ch_build_seconds, 3),
            "warm_expansions_seconds": round(warm_seconds, 3),
            "first_query_seconds": round(first_query_seconds, 6),
            "import_to_first_route_seconds": round(
                region_write_seconds
                + graph_build_seconds
                + ch_build_seconds
                + warm_seconds
                + first_query_seconds,
                3,
            ),
        },
        "ch": {
            "shortcuts": hierarchy.num_shortcuts,
            "shortcuts_per_edge": round(hierarchy.num_shortcuts / graph.num_edges(), 4),
            "witness_settle_limit": ContractionHierarchy.WITNESS_SETTLE_LIMIT,
            "warmed_expansions": warmed_entries,
        },
        "query": {
            "queries": queries,
            "p50_ms": round(p50_ms, 4),
            "p99_ms": round(p99_ms, 4),
            "mean_ms": round(statistics.fmean(latencies_ms), 4),
            "required_p50_ms": _REQUIRED_P50_MS,
            "sub_ms_p50": p50_ms < _max_p50_ms(),
        },
        "reference": {
            "pairs": ref_queries,
            "nx_mean_ms": round(nx_seconds / ref_queries * 1000.0, 3),
            "ch_mean_ms": round(ch_seconds / ref_queries * 1000.0, 4),
            "speedup": round(speedup, 1) if speedup else None,
            "required_speedup": _REQUIRED_SPEEDUP,
            "costs_identical": costs_identical,
            "paths_identical": paths_identical,
        },
    }
    if keep_tiles_dir is None:
        shutil.rmtree(tiles_dir, ignore_errors=True)
    return record


def _print_record(record):
    slim = {k: v for k, v in record.items() if k != "machine"}
    print(json.dumps(slim, indent=2))


def _write_record(record):
    with open(_RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.normpath(_RESULT_PATH)}")


def _assert_record(record):
    assert record["reference"]["costs_identical"], (
        "CH route costs diverged from the networkx Dijkstra reference"
    )
    assert record["reference"]["paths_identical"], (
        "CH paths diverged from the tie-broken Dijkstra reference"
    )
    floor = _min_speedup()
    assert record["reference"]["speedup"] >= floor, (
        f"CH speedup {record['reference']['speedup']}x is below the {floor}x floor"
    )
    ceiling = _max_p50_ms()
    assert record["query"]["p50_ms"] < ceiling, (
        f"CH query p50 {record['query']['p50_ms']} ms exceeds the {ceiling} ms ceiling"
    )


def _bench_kwargs():
    return dict(
        rows=_env_int("REPRO_BENCH_BIGMAP_ROWS", 1000),
        cols=_env_int("REPRO_BENCH_BIGMAP_COLS", 1000),
        queries=_env_int("REPRO_BENCH_BIGMAP_QUERIES", 200),
        ref_queries=_env_int("REPRO_BENCH_BIGMAP_REF_QUERIES", 12),
    )


def test_bigmap(benchmark):
    record = run_once(benchmark, run_bigmap_bench, **_bench_kwargs())
    print()
    _print_record(record)
    _write_record(record)
    _assert_record(record)


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke entry point
    record = run_bigmap_bench(**_bench_kwargs())
    _print_record(record)
    _write_record(record)
    _assert_record(record)
