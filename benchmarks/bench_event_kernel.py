"""Event kernel vs tick loop on a sparse mixed-rate 500-object fleet.

The discrete-event kernel exists for fleets the tick loop handles badly: a
few densely sampled objects beside hundreds of sparse, phase-shifted ones
(battery-saving trackers waking every 5-20 s) over a high-latency uplink.
The tick loop must visit every distinct sighting instant and scan the
shared channel's in-flight queue at each of them — with hundreds of
messages in flight on a tens-of-seconds uplink, that scan is the hot loop.
The event kernel schedules every delivery as an exact-instant agenda entry
instead, so the queue is never scanned at all.

This benchmark builds one such fleet (1 Hz / 0.2 Hz / 0.05 Hz lanes,
deterministic per-lane phase shifts, one shared lossy-free channel with a
long uplink latency), runs it on both kernels, and

* asserts the per-object results (updates, bytes, reasons, every error
  sample) are **identical** between the kernels — exact delivery changes
  *when* a message lands inside a tick gap, never what any measurement
  observes,
* asserts the tick path exhibits queue-delay quantisation
  (``max_queue_delay > 0``) while the event path delivers exactly
  (``== 0``),
* requires the event kernel to finish the run at least 2x faster, and
* records everything in ``BENCH_event_kernel.json`` at the repository
  root.

Tunables for quick local runs / CI smoke: ``REPRO_BENCH_EK_OBJECTS``
(fleet size, default 500), ``REPRO_BENCH_EK_SCALE`` (route scale of the
underlying scenario, default 0.12), ``REPRO_BENCH_EK_LATENCY`` (uplink
latency seconds, default 60) and ``REPRO_BENCH_EK_MIN_SPEEDUP`` (the
asserted floor, default the full 2x target).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.protocols.reporting import DistanceBasedReporting
from repro.service.channel import MessageChannel
from repro.sim.fleet import FleetLane, FleetSimulation
from repro.sim.runner import ScenarioSpec
from repro.traces.trace import Trace

_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_event_kernel.json")

#: The wall-clock advantage the event kernel must deliver on this fleet.
_REQUIRED_SPEEDUP = 2.0

#: Sighting intervals of the fleet's rate classes (seconds) and the share
#: of lanes in each class: a sparse fleet — 10% at 1 Hz, 30% at 0.2 Hz,
#: 60% at 0.05 Hz.
_RATE_CLASSES = ((1, 0.10), (5, 0.30), (20, 0.60))

#: Requested accuracy of every lane's distance-based protocol (metres).
_ACCURACY_M = 50.0


def _build_lanes(n_objects: int, scale: float):
    """The mixed-rate fleet: decimated, phase-shifted copies of one city trip.

    Every lane drives the same underlying ``rush_hour_city`` trip but
    reports on its own sighting grid: rate class by lane index, a stride
    offset spreading the lanes over the trip, and a deterministic
    fractional phase shift pushing the sparse lanes off the 1 s grid (the
    worst case for a tick loop: almost every sighting instant is distinct).
    """
    scenario = ScenarioSpec(name="rush_hour_city", scale=scale).build()
    sensor = scenario.sensor_trace
    truth = scenario.true_trace
    lanes = []
    counts = [int(round(share * n_objects)) for _, share in _RATE_CLASSES]
    counts[-1] = n_objects - sum(counts[:-1])
    lane_index = 0
    for (interval, _share), count in zip(_RATE_CLASSES, counts):
        for n in range(count):
            offset = lane_index % interval
            indices = np.arange(offset, len(sensor), interval)
            # Golden-ratio phase, quantised to ms, keeps instants distinct
            # across lanes without ever colliding with the 1 s grid.
            phase = 0.0
            if interval > 1:
                phase = round((lane_index * 0.618034) % 0.9 + 0.05, 3)
            times = sensor.times[indices] + phase
            lanes.append(
                FleetLane(
                    object_id=f"obj-{lane_index:04d}",
                    protocol=DistanceBasedReporting(_ACCURACY_M),
                    sensor_trace=Trace(times, sensor.positions[indices]),
                    truth_trace=Trace(times, truth.positions[indices]),
                )
            )
            lane_index += 1
    return lanes


def _run(kernel: str, n_objects: int, scale: float, latency: float):
    """One timed fleet run; returns (seconds, per-object dicts, stats, lanes)."""
    lanes = _build_lanes(n_objects, scale)
    channel = MessageChannel(latency=latency)
    fleet = FleetSimulation(lanes, channel=channel, kernel=kernel)
    started = time.perf_counter()
    result = fleet.run()
    seconds = time.perf_counter() - started
    rows = {oid: r.as_dict() for oid, r in result.results.items()}
    errors = {oid: r.metrics.errors for oid, r in result.results.items()}
    return seconds, rows, errors, result, channel.stats, lanes


def compare_kernels(n_objects: int = 500, scale: float = 0.12, latency: float = 60.0):
    """Time tick vs event kernel on the same fleet; return the record."""
    tick_s, tick_rows, tick_errors, tick_fleet, tick_stats, lanes = _run(
        "tick", n_objects, scale, latency
    )
    event_s, event_rows, event_errors, event_fleet, event_stats, _ = _run(
        "event", n_objects, scale, latency
    )

    identical = tick_rows == event_rows and all(
        np.array_equal(tick_errors[oid], event_errors[oid]) for oid in tick_rows
    )
    speedup = tick_s / event_s if event_s > 0 else None
    total_samples = sum(len(lane.sensor_trace) for lane in lanes)
    distinct = len({t for lane in lanes for t in lane.sensor_trace.times.tolist()})

    return {
        "benchmark": "event_kernel_vs_tick_loop",
        "objects": n_objects,
        "scenario": "rush_hour_city",
        "scale": scale,
        "rate_classes_s": [interval for interval, _ in _RATE_CLASSES],
        "rate_shares": [share for _, share in _RATE_CLASSES],
        "accuracy_m": _ACCURACY_M,
        "channel_latency_s": latency,
        "total_samples": total_samples,
        "distinct_instants": distinct,
        "messages_sent": tick_stats.messages_sent,
        "required_speedup": _REQUIRED_SPEEDUP,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "tick_seconds": round(tick_s, 4),
        "event_seconds": round(event_s, 4),
        "speedup": round(speedup, 3) if speedup else None,
        "results_identical": identical,
        "updates_per_object_hour": round(tick_fleet.updates_per_object_hour, 2),
        "tick_max_queue_delay_s": round(tick_stats.max_queue_delay, 4),
        "event_max_queue_delay_s": round(event_stats.max_queue_delay, 4),
        "stats_identical_modulo_queue_delay": (
            (
                tick_stats.messages_sent,
                tick_stats.messages_delivered,
                tick_stats.bytes_sent,
                tick_stats.bytes_delivered,
                tick_stats.messages_lost,
            )
            == (
                event_stats.messages_sent,
                event_stats.messages_delivered,
                event_stats.bytes_sent,
                event_stats.bytes_delivered,
                event_stats.messages_lost,
            )
        ),
    }


def _print_record(record):
    print(json.dumps({k: v for k, v in record.items() if k != "machine"}, indent=2))


def _write_record(record):
    with open(_RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.normpath(_RESULT_PATH)}")


def _assert_record(record):
    assert record["results_identical"], "event kernel diverged from the tick loop"
    assert record["stats_identical_modulo_queue_delay"], "channel stats diverged"
    assert record["event_max_queue_delay_s"] == 0.0, "event delivery is not exact"
    assert record["tick_max_queue_delay_s"] > 0.0, (
        "expected tick quantisation on a non-aligned sparse fleet"
    )
    floor = _min_speedup()
    assert record["speedup"] >= floor, (
        f"speedup {record['speedup']}x is below the {floor}x floor"
    )


def _env_int(name, default):
    return int(os.environ.get(name, default))


def _env_float(name, default):
    return float(os.environ.get(name, default))


def _min_speedup() -> float:
    """The asserted speedup floor (default: the full 2x target)."""
    return float(os.environ.get("REPRO_BENCH_EK_MIN_SPEEDUP", _REQUIRED_SPEEDUP))


def _params():
    return dict(
        n_objects=_env_int("REPRO_BENCH_EK_OBJECTS", 500),
        scale=_env_float("REPRO_BENCH_EK_SCALE", 0.12),
        latency=_env_float("REPRO_BENCH_EK_LATENCY", 60.0),
    )


def test_event_kernel_speedup(benchmark):
    from conftest import run_once

    record = run_once(benchmark, compare_kernels, **_params())
    print()
    _print_record(record)
    _write_record(record)
    _assert_record(record)


def test_kernels_identical_small():
    """Tiny cross-check runnable without the benchmark harness."""
    record = compare_kernels(n_objects=20, scale=0.05, latency=17.0)
    assert record["results_identical"]
    assert record["stats_identical_modulo_queue_delay"]
    assert record["event_max_queue_delay_s"] == 0.0


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke entry point
    record = compare_kernels(**_params())
    _print_record(record)
    _write_record(record)
    _assert_record(record)
