"""Property suite: the vectorised query kernels equal the scalar scans.

Replays every library scenario's real update stream into three backends —
the columnar sharded service, the scalar-engine sharded service and a
plain single server answered through the linear reference scans — and
asserts all three produce **identical** answers (ids, distances, ordering;
float equality, not approx) for all three query kinds.  A hypothesis case
pins the tie-breaking contract: objects at exactly equal distances sort
lexicographically by id.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.library import FleetMix, fleet_lanes, scenario_names
from repro.service.loadgen import build_replay_plan, service_for_plan
from repro.service.query_engine import QueryEngine, ScalarQueryEngine
from repro.service.server import LocationServer
from repro.sim.workload import QueryWorkload, execute_call

#: Small per-scenario scales (mirrors the golden/kernel suites so the
#: per-process scenario cache is shared between the test modules).
SCALES = {"freeway": 0.05, "interurban": 0.08, "city": 0.07, "walking": 0.15}
DEFAULT_SCALE = 0.15

LIBRARY_NAMES = scenario_names()

_WORKLOAD = QueryWorkload(
    mix={"range": 1.0, "nearest": 1.0, "geofence": 1.0},
    k=4,
    range_extent_m=1200.0,
    geofence_radius_m=600.0,
    margin=0.0,
    seed=29,
    arrival_rate_per_s=2.0,
)


def _plan_for(name: str):
    mix = FleetMix(scenario=name, protocol_id="linear", accuracy=100.0, count=6)
    lanes = fleet_lanes([mix], scale=SCALES.get(name, DEFAULT_SCALE))
    return build_replay_plan(lanes, _WORKLOAD, max_batches=30, max_queries=25)


def _linear_backend(plan) -> LocationServer:
    server = LocationServer()
    for object_id, prediction, accuracy in plan.registrations:
        server.register_object(object_id, prediction=prediction, accuracy=accuracy)
    return server


class TestVectorizedEqualsScalarOnLibrary:
    """Columnar == scalar == linear reference, per scenario, per query kind."""

    @pytest.mark.parametrize("name", LIBRARY_NAMES)
    def test_scenario_replay_answers_identical(self, name):
        plan = _plan_for(name)
        if not plan.batches:
            pytest.skip(f"scenario {name} produced no update batches at this scale")
        columnar = service_for_plan(plan, n_shards=3)
        scalar = service_for_plan(plan, n_shards=3, engine="scalar")
        linear = _linear_backend(plan)
        assert columnar.engine_kind == "columnar"
        assert scalar.engine_kind == "scalar"
        assert all(isinstance(e, QueryEngine) for e in columnar.engines)
        assert all(isinstance(e, ScalarQueryEngine) for e in scalar.engines)

        calls = list(plan.calls)
        call_index = 0
        compared = 0
        for t, batch in plan.batches:
            # Queries that arrived before this batch run against the
            # pre-batch state on every backend.
            while call_index < len(calls) and calls[call_index].time < t:
                call = calls[call_index]
                call_index += 1
                expected = execute_call(linear, _WORKLOAD, call)
                assert execute_call(columnar, _WORKLOAD, call) == expected
                assert execute_call(scalar, _WORKLOAD, call) == expected
                compared += 1
            columnar.ingest_batch(batch, t)
            scalar.ingest_batch(batch, t)
            for object_id, message in batch:
                linear.receive_update(object_id, message, t)
        for call in calls[call_index:]:
            expected = execute_call(linear, _WORKLOAD, call)
            assert execute_call(columnar, _WORKLOAD, call) == expected
            assert execute_call(scalar, _WORKLOAD, call) == expected
            compared += 1
        assert compared > 0, "plan produced no comparable queries"

    def test_margin_range_queries_identical(self):
        """The accuracy-margin path (per-record expansion) is compared too."""
        plan = _plan_for("city")
        margin_workload = QueryWorkload(
            mix={"range": 1.0},
            range_extent_m=1500.0,
            margin=1.5,
            seed=31,
            arrival_rate_per_s=2.0,
        )
        columnar = service_for_plan(plan, n_shards=3)
        scalar = service_for_plan(plan, n_shards=3, engine="scalar")
        linear = _linear_backend(plan)
        for t, batch in plan.batches:
            columnar.ingest_batch(batch, t)
            scalar.ingest_batch(batch, t)
            for object_id, message in batch:
                linear.receive_update(object_id, message, t)
        for call in plan.calls:
            call = type(call)(time=call.time, kind="range", cx=call.cx, cy=call.cy)
            expected = execute_call(linear, margin_workload, call)
            assert execute_call(columnar, margin_workload, call) == expected
            assert execute_call(scalar, margin_workload, call) == expected


class TestExactDistanceTies:
    """Equal-distance objects must sort lexicographically by id — always."""

    @given(
        labels=st.permutations(["aa", "ab", "ba", "bb", "ca", "zz"]),
        k=st.integers(min_value=1, max_value=6),
        cell_size=st.sampled_from([150.0, 400.0, 1000.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_k_nearest_ties_sort_lexicographically(self, labels, k, cell_size):
        # Six points at *exactly* the same distance from the centre: axis
        # mirrors and diagonal mirrors of the same offsets are bit-equal
        # under sqrt(dx*dx + dy*dy).
        centre = np.array([5000.0, 5000.0])
        offsets = [
            (300.0, 400.0),
            (-300.0, 400.0),
            (300.0, -400.0),
            (-300.0, -400.0),
            (400.0, 300.0),
            (-400.0, -300.0),
        ]
        positions = {
            label: centre + np.array(offset) for label, offset in zip(labels, offsets)
        }
        columnar = QueryEngine(cell_size=cell_size)
        scalar = ScalarQueryEngine(cell_size=cell_size)
        columnar.sync(positions, 0.0)
        scalar.sync(positions, 0.0)

        col_answer = columnar.k_nearest(centre, k)
        assert col_answer == scalar.k_nearest(centre, k)
        # All six are equidistant, so the top-k is the k lexicographically
        # smallest ids — regardless of insertion order or candidate set.
        assert [oid for oid, _ in col_answer] == sorted(labels)[:k]
        distances = {d for _, d in col_answer}
        assert len(distances) == 1  # exactly equal, not approximately

        radius = next(iter(distances))
        col_fence = columnar.within_radius(centre, radius)
        assert col_fence == scalar.within_radius(centre, radius)
        assert [oid for oid, _ in col_fence] == sorted(labels)
