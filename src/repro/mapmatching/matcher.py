"""Incremental map matching as described in Section 3 of the paper.

The matcher keeps a *current link* for the mobile object and, for every new
position sighting:

1. projects the sensed position ``pp`` perpendicularly onto the current link
   to obtain the corrected position ``pc``;
2. accepts the match when the projection distance is at most the matching
   tolerance ``um`` (which "reflects the accuracy of the sensor system");
3. otherwise decides between *forward-tracking* (the object passed the end
   of the link and reached an intersection: examine the outgoing links of
   that intersection) and *backward-tracking* (the object left the link in
   the middle, so a previous choice was wrong: go back to the last
   intersection(s) and examine their other outgoing links);
4. when neither finds a link within ``um``, declares the object *off-map*;
   the caller falls back to linear prediction and the matcher periodically
   re-queries the spatial index to return to the map.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.geo.vec import Vec2, as_vec, distance
from repro.roadmap.elements import Link
from repro.roadmap.graph import RoadMap


class MatchStatus(enum.Enum):
    """Outcome of one matching step."""

    MATCHED = "matched"
    """The position lies within ``um`` of the current link."""

    NEW_LINK = "new_link"
    """The position was matched, but onto a different link than before."""

    OFF_MAP = "off_map"
    """No link within ``um`` could be found."""


@dataclass(frozen=True)
class MatchResult:
    """Result of matching one position sighting."""

    status: MatchStatus
    link_id: Optional[int]
    offset: Optional[float]
    position: np.ndarray
    distance: float

    @property
    def is_matched(self) -> bool:
        """Whether a link was found (``MATCHED`` or ``NEW_LINK``)."""
        return self.status is not MatchStatus.OFF_MAP


@dataclass(frozen=True)
class MatcherConfig:
    """Tuning parameters of the incremental matcher.

    Attributes
    ----------
    tolerance:
        The paper's ``um``: maximum distance (metres) between a position and
        a link for the position to be matched onto that link.
    end_proximity:
        How close (metres, measured along the link) the previous match must
        have been to the link end for the matcher to consider the object to
        have "passed the end of the current link" and try forward-tracking
        first.
    backtrack_depth:
        How many intersections backward-tracking walks back through.
    reacquire_interval:
        When off-map, a full spatial-index query is issued every this many
        sightings to try to return to the map.
    advance_at_link_end:
        When the projection onto the current link clamps at the link's end
        (the object has passed the far intersection) but is still within
        ``um``, immediately try forward-tracking and advance whenever an
        outgoing link matches strictly better — instead of staying clamped
        to the endpoint until the distance exceeds ``um``.  This makes the
        matched positions independent of how a road is segmented into
        links, which the ingest benchmark relies on when comparing raw
        vs degree-2-contracted imported graphs.  Off by default: the
        clamped behaviour is what the paper's evaluation (and the golden
        metrics) pin down.
    """

    tolerance: float = 30.0
    end_proximity: float = 50.0
    backtrack_depth: int = 2
    reacquire_interval: int = 5
    advance_at_link_end: bool = False

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.end_proximity < 0:
            raise ValueError("end_proximity must be non-negative")
        if self.backtrack_depth < 1:
            raise ValueError("backtrack_depth must be at least 1")
        if self.reacquire_interval < 1:
            raise ValueError("reacquire_interval must be at least 1")


class IncrementalMapMatcher:
    """Stateful matcher fed one position sighting at a time."""

    def __init__(self, roadmap: RoadMap, config: Optional[MatcherConfig] = None):
        self.roadmap = roadmap
        self.config = config or MatcherConfig()
        self._current_link: Optional[Link] = None
        self._last_offset: float = 0.0
        self._link_history: List[int] = []
        self._off_map_counter = 0
        self._heading: Optional[np.ndarray] = None
        # statistics
        self.n_forward_tracks = 0
        self.n_backward_tracks = 0
        self.n_reacquisitions = 0
        self.n_off_map = 0
        self.n_direction_flips = 0

    @staticmethod
    def _normalised_heading(heading: Optional[Vec2]) -> Optional[np.ndarray]:
        if heading is None:
            return None
        h = as_vec(heading)
        norm = float(np.hypot(h[0], h[1]))
        if norm < 1e-9:
            return None
        return h / norm

    def _alignment(self, link: Link, offset: float) -> float:
        """Cosine between the object's heading and the link direction at *offset*."""
        if self._heading is None:
            return 1.0
        direction = link.direction_at(offset)
        return float(direction @ self._heading)

    def _maybe_flip_direction(
        self, p: np.ndarray, offset: float, dist: float
    ) -> Optional[MatchResult]:
        """Switch to the reverse twin of the current link if we travel against it."""
        assert self._current_link is not None
        if self._heading is None:
            return None
        if self._alignment(self._current_link, offset) >= -0.2:
            return None
        twin = self.roadmap.reverse_link(self._current_link)
        if twin is None:
            return None
        matched, twin_offset, twin_dist = twin.project(p)
        if twin_dist > self.config.tolerance:
            return None
        if self._alignment(twin, twin_offset) <= 0.0:
            return None
        self._set_current(twin, twin_offset)
        self.n_direction_flips += 1
        return MatchResult(MatchStatus.NEW_LINK, twin.id, twin_offset, matched, twin_dist)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def current_link(self) -> Optional[Link]:
        """The link the object is currently matched to, if any."""
        return self._current_link

    def reset(self) -> None:
        """Forget the current link and history (object teleported / new trace)."""
        self._current_link = None
        self._last_offset = 0.0
        self._link_history.clear()
        self._off_map_counter = 0
        self._heading = None

    def update(self, position: Vec2, heading: Optional[Vec2] = None) -> MatchResult:
        """Match one sensed position and return the result.

        Parameters
        ----------
        position:
            The sensed position ``pp``.
        heading:
            Optional unit vector of the object's direction of travel
            (estimated from the last sightings).  When provided it is used
            to disambiguate the two directed links of a two-way road, whose
            geometries are identical: the prediction function must advance
            along the link the object actually travels, not its reverse
            twin.
        """
        p = as_vec(position)
        self._heading = self._normalised_heading(heading)
        if self._current_link is None:
            return self._acquire(p)

        matched, offset, dist = self._current_link.project(p)
        if dist <= self.config.tolerance:
            # The geometry still matches; check that we are not tracking the
            # reverse carriageway of the road the object actually follows.
            flipped = self._maybe_flip_direction(p, offset, dist)
            if flipped is not None:
                return flipped
            if (
                self.config.advance_at_link_end
                and offset >= self._current_link.length - 1e-6
            ):
                advanced = self._advance_past_end(p)
                if advanced is not None:
                    return advanced
            self._last_offset = offset
            return MatchResult(
                MatchStatus.MATCHED, self._current_link.id, offset, matched, dist
            )

        # The position no longer matches the current link: decide between
        # forward- and backward-tracking based on whether the object had
        # (nearly) reached the end of the link.
        near_end = (
            self._current_link.length - self._last_offset <= self.config.end_proximity
            or offset >= self._current_link.length - 1e-6
        )
        result = None
        if near_end:
            result = self._forward_track(p)
            if result is None:
                result = self._backward_track(p)
        else:
            result = self._backward_track(p)
            if result is None:
                result = self._forward_track(p)
        if result is not None:
            if (
                self.config.advance_at_link_end
                and result.offset is not None
                and self._current_link is not None
                and result.offset >= self._current_link.length - 1e-6
            ):
                # The recovered match itself clamps at a link end — the
                # sighting passed more than one link since the last one.
                advanced = self._advance_past_end(p)
                if advanced is not None:
                    return advanced
            return result
        return self._declare_off_map(p)

    # ------------------------------------------------------------------ #
    # acquisition and tracking
    # ------------------------------------------------------------------ #
    def _acquire(self, p: np.ndarray) -> MatchResult:
        """Initial matching / re-acquisition through the spatial index."""
        self._off_map_counter += 1
        if (
            self._off_map_counter > 1
            and (self._off_map_counter - 1) % self.config.reacquire_interval != 0
        ):
            return MatchResult(MatchStatus.OFF_MAP, None, None, p.copy(), float("inf"))
        candidates = [
            link for link, _ in self.roadmap.links_near(p, self.config.tolerance)
        ]
        result = self._best_candidate(p, candidates)
        if result is None:
            self.n_off_map += 1
            return MatchResult(MatchStatus.OFF_MAP, None, None, p.copy(), float("inf"))
        self.n_reacquisitions += 1
        self._off_map_counter = 0
        return result

    def _forward_track(self, p: np.ndarray) -> Optional[MatchResult]:
        """The object passed the end of its link: try the outgoing links there."""
        assert self._current_link is not None
        candidates = self.roadmap.outgoing_links(self._current_link.to_node)
        result = self._best_candidate(p, candidates, exclude=self._current_link.id)
        if result is not None:
            self.n_forward_tracks += 1
        return result

    def _backward_track(self, p: np.ndarray) -> Optional[MatchResult]:
        """A previous link choice was wrong: re-examine earlier intersections."""
        assert self._current_link is not None
        candidates: List[Link] = []
        node = self._current_link.from_node
        depth = 0
        visited_nodes = set()
        history = list(reversed(self._link_history))
        while depth < self.config.backtrack_depth and node not in visited_nodes:
            visited_nodes.add(node)
            candidates.extend(self.roadmap.outgoing_links(node))
            depth += 1
            # Walk further back along the recently traversed links, if known.
            previous_id = history[depth - 1] if depth - 1 < len(history) else None
            if previous_id is None or not self.roadmap.has_link(previous_id):
                break
            node = self.roadmap.link(previous_id).from_node
        result = self._best_candidate(p, candidates, exclude=self._current_link.id)
        if result is not None:
            self.n_backward_tracks += 1
        return result

    def _advance_past_end(self, p: np.ndarray) -> Optional[MatchResult]:
        """Follow outgoing links while they match strictly better.

        Called when the projection clamps at the current link's end but is
        still within tolerance (``advance_at_link_end``).  The loop handles
        sightings that legitimately pass several short links between two
        samples, as happens on uncontracted imported graphs.
        """
        best: Optional[MatchResult] = None
        for _ in range(64):  # bounded: every step strictly improves the match
            assert self._current_link is not None
            _, offset, dist = self._current_link.project(p)
            misaligned = self._alignment(self._current_link, offset) < 0.0
            result = self._best_candidate(
                p,
                self.roadmap.outgoing_links(self._current_link.to_node),
                exclude=self._current_link.id,
                better_than=(misaligned, dist),
            )
            if result is None:
                break
            self.n_forward_tracks += 1
            best = result
            assert result.offset is not None
            if result.offset < self._current_link.length - 1e-6:
                break  # the match is interior now; no further link passed
        return best

    def _best_candidate(
        self,
        p: np.ndarray,
        candidates: List[Link],
        exclude: Optional[int] = None,
        better_than: Optional[tuple] = None,
    ) -> Optional[MatchResult]:
        # Candidates are ranked primarily by whether the object's heading is
        # compatible with the link direction (so the correct carriageway of a
        # two-way road wins over its reverse twin) and secondarily by the
        # projection distance, the paper's "nearest link" rule.
        best: Optional[tuple[bool, float, Link, np.ndarray, float]] = None
        for link in candidates:
            if exclude is not None and link.id == exclude:
                continue
            matched, offset, dist = link.project(p)
            if dist > self.config.tolerance:
                continue
            misaligned = self._alignment(link, offset) < 0.0
            key = (misaligned, dist)
            if better_than is not None and key >= better_than:
                continue
            if best is None or key < (best[0], best[1]):
                best = (misaligned, dist, link, matched, offset)
        if best is None:
            return None
        _, dist, link, matched, offset = best
        self._set_current(link, offset)
        return MatchResult(MatchStatus.NEW_LINK, link.id, offset, matched, dist)

    def _declare_off_map(self, p: np.ndarray) -> MatchResult:
        self.n_off_map += 1
        self._current_link = None
        self._last_offset = 0.0
        self._off_map_counter = 1
        return MatchResult(MatchStatus.OFF_MAP, None, None, p.copy(), float("inf"))

    def _set_current(self, link: Link, offset: float) -> None:
        if self._current_link is not None and self._current_link.id != link.id:
            self._link_history.append(self._current_link.id)
            if len(self._link_history) > 32:
                self._link_history.pop(0)
        self._current_link = link
        self._last_offset = offset

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def statistics(self) -> dict:
        """Counters describing the matcher's behaviour so far."""
        return {
            "forward_tracks": self.n_forward_tracks,
            "backward_tracks": self.n_backward_tracks,
            "reacquisitions": self.n_reacquisitions,
            "off_map_events": self.n_off_map,
            "direction_flips": self.n_direction_flips,
        }
