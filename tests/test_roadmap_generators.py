"""Unit tests for repro.roadmap.generators."""

import random

import networkx as nx
import numpy as np
import pytest

from repro.roadmap.elements import RoadClass
from repro.roadmap.generators import (
    city_grid_map,
    curved_path,
    freeway_map,
    interurban_map,
    pedestrian_map,
    straight_road_map,
    t_junction_map,
)


class TestCurvedPath:
    def test_length_approximation(self):
        path = curved_path(length=5000.0, step=50.0, rng=random.Random(0))
        deltas = np.diff(path, axis=0)
        total = np.hypot(deltas[:, 0], deltas[:, 1]).sum()
        assert total == pytest.approx(5000.0, rel=0.05)

    def test_starts_at_start(self):
        path = curved_path(length=1000.0, start=(5.0, 7.0), rng=random.Random(1))
        assert path[0].tolist() == [5.0, 7.0]

    def test_deterministic_for_seeded_rng(self):
        a = curved_path(length=2000.0, rng=random.Random(42))
        b = curved_path(length=2000.0, rng=random.Random(42))
        np.testing.assert_allclose(a, b)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            curved_path(length=0.0)
        with pytest.raises(ValueError):
            curved_path(length=100.0, step=0.0)


class TestFreewayMap:
    @pytest.fixture(scope="class")
    def freeway(self):
        return freeway_map(length_km=40.0, interchange_spacing_km=4.0, seed=0)

    def test_total_length_scale(self, freeway):
        # Two carriageways plus ramps: at least twice the corridor length.
        assert freeway.total_length() >= 2 * 40_000.0 * 0.9

    def test_contains_motorway_links(self, freeway):
        classes = {l.road_class for l in freeway.links.values()}
        assert RoadClass.MOTORWAY in classes
        assert RoadClass.SECONDARY in classes  # the exit ramps

    def test_has_interchanges_with_choices(self, freeway):
        # At least one intersection must have more than 2 outgoing links
        # (continue, reverse and a ramp) so that the prediction has a choice.
        assert any(freeway.degree(nid) >= 3 for nid in freeway.intersections)

    def test_connected(self, freeway):
        graph = freeway.to_networkx().to_undirected()
        assert nx.is_connected(graph)

    def test_deterministic(self):
        a = freeway_map(length_km=25.0, seed=7)
        b = freeway_map(length_km=25.0, seed=7)
        assert a.num_links() == b.num_links()
        assert a.total_length() == pytest.approx(b.total_length())


class TestInterurbanMap:
    @pytest.fixture(scope="class")
    def interurban(self):
        return interurban_map(n_towns=4, town_spacing_km=10.0, seed=1)

    def test_primary_corridor_exists(self, interurban):
        primaries = [l for l in interurban.links.values() if l.road_class == RoadClass.PRIMARY]
        assert sum(l.length for l in primaries) >= 2 * 3 * 10_000.0 * 0.8

    def test_connected(self, interurban):
        graph = interurban.to_networkx().to_undirected()
        assert nx.is_connected(graph)

    def test_has_side_roads(self, interurban):
        classes = {l.road_class for l in interurban.links.values()}
        assert RoadClass.SECONDARY in classes


class TestCityGridMap:
    @pytest.fixture(scope="class")
    def city(self):
        return city_grid_map(rows=6, cols=5, spacing_m=200.0, seed=2)

    def test_node_count(self, city):
        assert city.num_intersections() == 30

    def test_link_count(self, city):
        # Two-way links: rows*(cols-1) horizontal + cols*(rows-1) vertical, times 2.
        expected = 2 * (6 * 4 + 5 * 5)
        assert city.num_links() == expected

    def test_interior_degree(self, city):
        degrees = [city.degree(nid) for nid in city.intersections]
        assert max(degrees) == 4

    def test_contains_arterials(self, city):
        classes = {l.road_class for l in city.links.values()}
        assert RoadClass.SECONDARY in classes
        assert RoadClass.RESIDENTIAL in classes

    def test_connected(self, city):
        assert nx.is_connected(city.to_networkx().to_undirected())

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            city_grid_map(rows=1, cols=5)


class TestPedestrianMap:
    @pytest.fixture(scope="class")
    def walkways(self):
        return pedestrian_map(rows=8, cols=8, spacing_m=80.0, diagonal_probability=0.5, seed=3)

    def test_all_footpaths(self, walkways):
        assert all(l.road_class == RoadClass.FOOTPATH for l in walkways.links.values())

    def test_has_diagonals(self, walkways):
        # A diagonal link is longer than the grid spacing.
        assert any(l.length > 100.0 for l in walkways.links.values())

    def test_connected(self, walkways):
        assert nx.is_connected(walkways.to_networkx().to_undirected())


class TestFixtures:
    def test_straight_road_map(self):
        roadmap = straight_road_map(length_m=1000.0, n_links=2)
        assert roadmap.num_intersections() == 3
        assert roadmap.num_links() == 4

    def test_t_junction_map(self):
        roadmap = t_junction_map(arm_length_m=300.0)
        assert roadmap.num_intersections() == 4
        assert roadmap.num_links() == 6
        center, _ = roadmap.nearest_intersection((0.0, 0.0))
        assert roadmap.degree(center.id) == 3
