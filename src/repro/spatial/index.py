"""Common interface for spatial indexes.

An index stores *items*: arbitrary payload objects together with a bounding
box and a distance callback.  For road maps the payload is a link identifier,
the bounding box is the link geometry's bounds and the distance callback is
the polyline point-to-line distance.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Optional, Sequence, TypeVar

from repro.geo.bbox import BoundingBox
from repro.geo.vec import Vec2, as_vec

T = TypeVar("T", bound=Hashable)

#: Radius beyond which :meth:`SpatialIndex.nearest` stops growing its query
#: box and falls back to one exhaustive scan of all items.
_EXHAUSTIVE_SCAN_RADIUS = 1e9


@dataclass(frozen=True)
class IndexedItem(Generic[T]):
    """A payload registered with a spatial index.

    Parameters
    ----------
    key:
        Identifier of the item (e.g. a link id).  Must be hashable.
    bounds:
        Axis-aligned bounding box of the item's geometry.
    distance:
        Callable returning the exact distance from a query point to the
        item's geometry; used to refine candidate sets produced from the
        bounding boxes.
    """

    key: T
    bounds: BoundingBox
    distance: Callable[[Vec2], float]


class SpatialIndex(abc.ABC, Generic[T]):
    """Abstract interface shared by :class:`GridIndex` and :class:`STRtree`."""

    @abc.abstractmethod
    def insert(self, item: IndexedItem[T]) -> None:
        """Add an item to the index (not all indexes support late insertion)."""

    @abc.abstractmethod
    def query_bbox(self, box: BoundingBox) -> list[IndexedItem[T]]:
        """All items whose bounding boxes intersect *box*."""

    def remove(self, key: T) -> int:
        """Remove every item stored under *key*; returns the number removed.

        Removal is optional: static indexes (the STR-packed R-tree) do not
        support it.  :class:`~repro.spatial.grid.GridIndex` implements it so
        that incremental indexes over moving objects (the location service's
        query engine) can relocate items cheaply.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support removal")

    @abc.abstractmethod
    def items(self) -> list[IndexedItem[T]]:
        """Every stored item (used by exhaustive fallback scans)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of items stored."""

    # ------------------------------------------------------------------ #
    # generic algorithms built on top of query_bbox
    # ------------------------------------------------------------------ #
    def query_radius(self, point: Vec2, radius: float) -> list[IndexedItem[T]]:
        """Items whose exact geometry lies within *radius* metres of *point*.

        Candidates are produced by a bounding-box query and then refined with
        the items' distance callbacks, so the result is exact — "within" is
        decided solely by ``item.distance(p) <= radius``.  The candidate box
        is inflated by a float-rounding margin: an item whose true distance
        exceeds the radius by less than the distance callback's rounding
        error must still be *refined* (where the callback will round it to
        exactly ``radius`` and admit it), not silently pruned by the exact
        bbox test — otherwise the answer would disagree with a brute-force
        scan using the same callback at the boundary.
        """
        p = as_vec(point)
        margin = 1e-9 + 1e-12 * radius
        box = BoundingBox.around(p, radius + margin)
        out = []
        for item in self.query_bbox(box):
            if item.distance(p) <= radius:
                out.append(item)
        return out

    def nearest(
        self, point: Vec2, max_distance: Optional[float] = None
    ) -> Optional[tuple[IndexedItem[T], float]]:
        """The item closest to *point*, optionally within *max_distance*.

        Returns ``(item, distance)`` or ``None`` if no item qualifies.  The
        search expands the query radius geometrically starting from a small
        initial guess, which gives near-O(1) behaviour for the localised
        queries the map matcher issues.
        """
        p = as_vec(point)
        if len(self) == 0:
            return None
        if max_distance is not None and max_distance <= 0:
            return None
        limit = float(max_distance) if max_distance is not None else float("inf")
        radius = min(self._initial_radius(), limit)
        best: Optional[tuple[IndexedItem[T], float]] = None
        while True:
            candidates = self.query_bbox(BoundingBox.around(p, radius))
            for item in candidates:
                d = item.distance(p)
                if d <= limit and (best is None or d < best[1]):
                    best = (item, d)
            if best is not None and best[1] <= radius:
                # Nothing outside the searched box can be closer.
                return best
            if radius >= limit or len(candidates) == len(self):
                # The whole allowed region (or the whole index) was examined.
                return best
            if radius >= _EXHAUSTIVE_SCAN_RADIUS:
                # Pathological geometry (items astronomically far away):
                # give up on box growth and scan every item exactly once.
                return brute_force_nearest(self.items(), p, limit=limit)
            radius = min(radius * 4.0, limit)

    def k_nearest(
        self, point: Vec2, k: int, max_distance: Optional[float] = None
    ) -> list[tuple[IndexedItem[T], float]]:
        """The *k* items closest to *point*, sorted by distance."""
        p = as_vec(point)
        if k <= 0 or len(self) == 0:
            return []
        radius = self._initial_radius() if max_distance is None else max_distance
        limit = max_distance if max_distance is not None else float("inf")
        while True:
            candidates = self.query_bbox(BoundingBox.around(p, radius))
            scored = sorted(
                ((item, item.distance(p)) for item in candidates), key=lambda x: x[1]
            )
            scored = [(it, d) for it, d in scored if d <= limit]
            if len(scored) >= k and scored[k - 1][1] <= radius:
                return scored[:k]
            if radius >= limit or len(candidates) == len(self):
                return scored[:k]
            radius *= 4.0

    def _initial_radius(self) -> float:
        """Starting radius for expanding nearest-neighbour searches."""
        return 50.0


def brute_force_nearest(
    items: Sequence[IndexedItem[T]], point: Vec2, limit: float = float("inf")
) -> Optional[tuple[IndexedItem[T], float]]:
    """Reference O(n) nearest-item search (tests, exhaustive fallbacks).

    Items farther than *limit* are ignored entirely, matching the
    ``max_distance`` contract of :meth:`SpatialIndex.nearest`.
    """
    p = as_vec(point)
    best: Optional[tuple[IndexedItem[T], float]] = None
    for item in items:
        d = item.distance(p)
        if d <= limit and (best is None or d < best[1]):
            best = (item, d)
    return best
