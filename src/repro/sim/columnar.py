"""Columnar (struct-of-arrays) mega-fleet engine.

At 100k tracked objects the per-object representation of the fleet loop —
one protocol instance, one estimator deque, one server record each — spends
its time on attribute access and allocation.  This module keeps the whole
fleet's hot state in contiguous NumPy columns instead:

* :class:`ColumnarStore` — one array per field (current position, last
  reported position/velocity/time, thresholds, per-object message sequence
  counters, update/byte totals), plus a bulk spatial-index build via
  :meth:`~repro.spatial.grid.GridIndex.rebuild`.
* :class:`ColumnarFleetEngine` — a vectorised simulation loop over that
  store whose arithmetic matches the scalar protocol/server code operation
  for operation, so its results are **bitwise identical** to
  :class:`~repro.sim.fleet.FleetSimulation` (asserted by the test-suite on
  library fleets, on both kernels).

The engine covers the *homogeneous mega-fleet* shape: every lane on one
shared sampling grid, a threshold protocol with static or linear
prediction (:class:`~repro.protocols.reporting.DistanceBasedReporting` or
:class:`~repro.protocols.linear.LinearPredictionProtocol`), and the
default loss-free zero-latency channel.  Anything richer — per-lane
channels, latency/loss, timers, map prediction, query workloads — stays on
the general fleet loop (use :meth:`ColumnarFleetEngine.ineligibility` to
ask why a fleet does not qualify).  Per-lane accuracies, sensor
uncertainties and separate truth traces are fully supported: they are
per-object *columns*, not code paths.

Why bitwise equality is achievable: the scalar trigger is
``sqrt(dx*dx + dy*dy) + up > us`` on float64 scalars, and NumPy performs
the same IEEE-754 operations elementwise; the batched speed/heading
estimator reduces each window along the last axis exactly like the
per-lane :func:`~repro.traces.estimation.estimate_trace` (itself proven
bitwise equal to the streaming estimator).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.protocols.linear import LinearPredictionProtocol
from repro.protocols.reporting import DistanceBasedReporting
from repro.protocols.base import _BASE_UPDATE_BYTES, UpdateReason
from repro.sim.metrics import AccuracyMetrics, SimulationResult
from repro.spatial.grid import GridIndex
from repro.spatial.index import IndexedItem

#: Prediction modes the vectorised loop implements.
STATIC, LINEAR = "static", "linear"

#: Lanes per chunk of the batched estimator: bounds the sliding-window
#: temporaries to ~100 MB at typical trace lengths while keeping the NumPy
#: call overhead amortised.
_ESTIMATE_CHUNK = 4096


def estimate_traces(
    times: np.ndarray, positions: np.ndarray, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sliding-window speed/heading estimates for N lanes sharing one grid.

    ``positions`` has shape ``(n_lanes, n_samples, 2)``; returns
    ``(velocities, speeds)`` of shapes ``(n_lanes, n_samples, 2)`` and
    ``(n_lanes, n_samples)``.  Row ``k`` is bitwise identical to
    ``estimate_trace(times, positions[k], window)`` — the reductions run
    over the last (window) axis in the same order, and the shared time grid
    makes the centred-time factors literally the same floats — which is
    what lets the columnar engine reuse the scalar protocols' equivalence
    proof.  Lanes are processed in fixed-size chunks so the windowed
    temporaries stay bounded at mega-fleet widths.
    """
    if window < 2:
        raise ValueError("window must be at least 2")
    times = np.asarray(times, dtype=float)
    positions = np.asarray(positions, dtype=float)
    n_lanes, n = positions.shape[0], positions.shape[1]
    velocities = np.zeros((n_lanes, n, 2))
    speeds = np.zeros((n_lanes, n))
    if n < 2:
        return velocities, speeds
    w = int(window)
    # Ramp-up: growing prefix windows of size 2 .. w - 1, one vectorised
    # pass per prefix length across all lanes.  The time factors are
    # scalars shared by every lane (one common grid), computed exactly as
    # estimate_velocity computes them.
    for i in range(1, min(w - 1, n)):
        t = times[: i + 1]
        t_rel = t - t[-1]
        t_mean = t_rel.mean()
        t_centered = t_rel - t_mean
        denom = float((t_centered * t_centered).sum())
        if denom == 0.0:
            continue
        # ascontiguousarray keeps the per-row reductions on the same pairwise
        # summation path as the scalar estimator's contiguous prefixes.
        x = np.ascontiguousarray(positions[:, : i + 1, 0])
        y = np.ascontiguousarray(positions[:, : i + 1, 1])
        vx = (t_centered * (x - x.mean(axis=1, keepdims=True))).sum(axis=1) / denom
        vy = (t_centered * (y - y.mean(axis=1, keepdims=True))).sum(axis=1) / denom
        velocities[:, i, 0] = vx
        velocities[:, i, 1] = vy
        speeds[:, i] = np.hypot(vx, vy)
    if n < w:
        return velocities, speeds
    from numpy.lib.stride_tricks import sliding_window_view

    tw = np.ascontiguousarray(sliding_window_view(times, w))
    t_rel = tw - tw[:, -1:]
    t_centered = t_rel - t_rel.mean(axis=1, keepdims=True)
    denom = (t_centered * t_centered).sum(axis=1)
    ok = denom != 0.0
    denom_safe = np.where(ok, denom, 1.0)
    for lo in range(0, n_lanes, _ESTIMATE_CHUNK):
        hi = min(lo + _ESTIMATE_CHUNK, n_lanes)
        xw = np.ascontiguousarray(
            sliding_window_view(positions[lo:hi, :, 0], w, axis=1)
        )
        yw = np.ascontiguousarray(
            sliding_window_view(positions[lo:hi, :, 1], w, axis=1)
        )
        vx = (t_centered * (xw - xw.mean(axis=2, keepdims=True))).sum(axis=2) / denom_safe
        vy = (t_centered * (yw - yw.mean(axis=2, keepdims=True))).sum(axis=2) / denom_safe
        vx = np.where(ok, vx, 0.0)
        vy = np.where(ok, vy, 0.0)
        velocities[lo:hi, w - 1 :, 0] = vx
        velocities[lo:hi, w - 1 :, 1] = vy
        speeds[lo:hi, w - 1 :] = np.hypot(vx, vy)
    return velocities, speeds


class ColumnarStore:
    """Struct-of-arrays state for N tracked objects.

    One contiguous column per field instead of N Python objects: current
    position, last *reported* position / velocity / time (the protocol's
    ``or`` and, with a zero-latency loss-free channel, also the server's
    record), the per-object protocol thresholds ``us`` / ``up``, per-object
    message sequence counters (the channel's keyed-loss counter), and the
    update/byte totals.
    """

    __slots__ = (
        "n", "object_ids", "position", "reported_position",
        "reported_velocity", "reported_time", "accuracy",
        "sensor_uncertainty", "sequence", "updates", "bytes_sent",
        "has_report",
    )

    def __init__(
        self,
        object_ids: Sequence[str],
        accuracy,
        sensor_uncertainty,
    ):
        n = len(object_ids)
        if n == 0:
            raise ValueError("a columnar store needs at least one object")
        self.n = n
        self.object_ids = list(object_ids)
        if len(set(self.object_ids)) != n:
            raise ValueError("object ids must be unique")
        self.accuracy = np.broadcast_to(
            np.asarray(accuracy, dtype=float), (n,)
        ).copy()
        self.sensor_uncertainty = np.broadcast_to(
            np.asarray(sensor_uncertainty, dtype=float), (n,)
        ).copy()
        if np.any(self.accuracy <= 0):
            raise ValueError("accuracy (us) must be positive")
        if np.any(self.sensor_uncertainty < 0):
            raise ValueError("sensor_uncertainty (up) must be non-negative")
        self.position = np.zeros((n, 2))
        self.reported_position = np.zeros((n, 2))
        self.reported_velocity = np.zeros((n, 2))
        self.reported_time = np.zeros(n)
        self.has_report = np.zeros(n, dtype=bool)
        self.sequence = np.zeros(n, dtype=np.int64)
        self.updates = np.zeros(n, dtype=np.int64)
        self.bytes_sent = np.zeros(n, dtype=np.int64)

    def build_index(self, cell_size: float = 500.0) -> GridIndex:
        """A spatial index over the current reported positions, built bulk.

        Uses :meth:`GridIndex.rebuild` — one pass instead of N ``insert``
        calls — mirroring the query engine's cold-start path.
        """
        positions = self.reported_position
        cells = np.floor(positions / float(cell_size)).astype(np.int64).tolist()
        index: GridIndex[str] = GridIndex(cell_size=cell_size)
        items = []
        reported = self.has_report
        for k, object_id in enumerate(self.object_ids):
            if not reported[k]:
                continue
            cx, cy = cells[k]
            items.append(
                IndexedItem(
                    key=object_id,
                    bounds=BoundingBox(
                        cx * cell_size, cy * cell_size,
                        (cx + 1) * cell_size, (cy + 1) * cell_size,
                    ),
                    distance=None,
                )
            )
        index.rebuild(items)
        return index


class ColumnarFleetEngine:
    """Vectorised fleet simulation over a :class:`ColumnarStore`.

    Parameters
    ----------
    times:
        The shared sampling grid, shape ``(n_samples,)``, strictly
        increasing.
    sensor:
        Sensor positions, shape ``(n_lanes, n_samples, 2)``.
    truth:
        Ground-truth positions of the same shape (pass ``sensor`` itself
        for noise-free fleets).
    mode:
        ``"static"`` (distance-based reporting) or ``"linear"``
        (linear-prediction dead reckoning).
    accuracy / sensor_uncertainty:
        Scalars or per-lane arrays — the protocol columns ``us`` and ``up``.
    estimation_window:
        The speed/heading estimation window shared by the fleet (only
        consulted in ``linear`` mode; static prediction never reads the
        velocity estimate and skips the estimator entirely).
    object_ids:
        Optional explicit ids; default ``obj/<k>``.
    protocol_name:
        Overrides the reported protocol name (defaults to the scalar
        protocol's).
    count_initial_update:
        Same meaning as on :class:`~repro.sim.fleet.FleetSimulation`.
    """

    def __init__(
        self,
        times: np.ndarray,
        sensor: np.ndarray,
        truth: Optional[np.ndarray] = None,
        mode: str = LINEAR,
        accuracy=100.0,
        sensor_uncertainty=0.0,
        estimation_window: int = 4,
        object_ids: Optional[Sequence[str]] = None,
        protocol_name: Optional[str] = None,
        count_initial_update: bool = True,
        obs=None,
    ):
        if mode not in (STATIC, LINEAR):
            raise ValueError(f"mode must be 'static' or 'linear', got {mode!r}")
        self.times = np.asarray(times, dtype=float)
        self.sensor = np.asarray(sensor, dtype=float)
        if self.times.ndim != 1 or len(self.times) == 0:
            raise ValueError("times must be a non-empty 1-d array")
        if len(self.times) > 1 and not np.all(np.diff(self.times) > 0):
            raise ValueError("times must be strictly increasing")
        if self.sensor.ndim != 3 or self.sensor.shape[1:] != (len(self.times), 2):
            raise ValueError(
                f"sensor must have shape (n_lanes, {len(self.times)}, 2), "
                f"got {self.sensor.shape!r}"
            )
        self.truth = self.sensor if truth is None else np.asarray(truth, dtype=float)
        if self.truth.shape != self.sensor.shape:
            raise ValueError("truth must share the sensor array's shape")
        self.mode = mode
        self.estimation_window = int(estimation_window)
        self.count_initial_update = bool(count_initial_update)
        n = self.sensor.shape[0]
        ids = (
            list(object_ids)
            if object_ids is not None
            else [f"obj/{k}" for k in range(n)]
        )
        if len(ids) != n:
            raise ValueError("object_ids must match the sensor array's lane count")
        self.store = ColumnarStore(ids, accuracy, sensor_uncertainty)
        if protocol_name is None:
            protocol_name = (
                DistanceBasedReporting.name if mode == STATIC
                else LinearPredictionProtocol.name
            )
        self.protocol_name = protocol_name
        #: Optional :class:`~repro.obs.Observability`; the run records the
        #: same deterministic ``sim.*`` counters the scalar fleet loop
        #: records (the columnar engine is bit-identical to it, so the
        #: counts agree), plus estimate/loop phase spans.  Aggregate-only:
        #: nothing is recorded per instant, so obs-on overhead is noise.
        self.obs = obs

    # ------------------------------------------------------------------ #
    # lane-based construction and eligibility
    # ------------------------------------------------------------------ #
    @staticmethod
    def ineligibility(lanes, channel=None, server=None, query_workload=None) -> Optional[str]:
        """Why this fleet cannot run columnar — or ``None`` if it can.

        The general fleet loop handles everything; the columnar engine
        handles the homogeneous mega-fleet shape described in the module
        docstring.  The returned string is a human-readable reason
        (first mismatch found).
        """
        lanes = list(lanes)
        if not lanes:
            return "a fleet needs at least one lane"
        if server is not None:
            return "columnar fleets imply the plain in-memory server"
        if query_workload is not None:
            return "query workloads need the general fleet loop"
        first = lanes[0].protocol
        if type(first) not in (DistanceBasedReporting, LinearPredictionProtocol):
            return (
                f"protocol {type(first).__name__} has no columnar decision rule "
                "(supported: DistanceBasedReporting, LinearPredictionProtocol)"
            )
        window = first.estimator.window
        times = lanes[0].sensor_trace.times
        for lane in lanes:
            if type(lane.protocol) is not type(first):
                return "columnar fleets need one protocol class across all lanes"
            if lane.protocol.estimator.window != window:
                return "columnar fleets share one estimation window"
            if lane.channel is not None:
                ch = lane.channel
                if ch.latency != 0.0 or ch.loss_probability != 0.0:
                    return "columnar fleets need loss-free zero-latency channels"
            if not np.array_equal(lane.sensor_trace.times, times):
                return "columnar fleets share one sampling grid"
            truth = lane.truth_trace
            if truth is not None and not np.array_equal(truth.times, times):
                return "sensor and truth traces must share their timestamps"
        if channel is not None and (
            channel.latency != 0.0 or channel.loss_probability != 0.0
        ):
            return "columnar fleets need loss-free zero-latency channels"
        return None

    @classmethod
    def from_lanes(
        cls, lanes, count_initial_update: bool = True, obs=None
    ) -> "ColumnarFleetEngine":
        """Build the engine from :class:`~repro.sim.fleet.FleetLane`\\ s.

        Raises ``ValueError`` with the :meth:`ineligibility` reason when the
        fleet does not fit the columnar shape.
        """
        lanes = list(lanes)
        reason = cls.ineligibility(lanes)
        if reason is not None:
            raise ValueError(f"fleet is not columnar-eligible: {reason}")
        first = lanes[0].protocol
        mode = STATIC if isinstance(first, DistanceBasedReporting) else LINEAR
        times = lanes[0].sensor_trace.times
        sensor = np.stack([lane.sensor_trace.positions for lane in lanes])
        truth = np.stack(
            [
                (lane.truth_trace if lane.truth_trace is not None else lane.sensor_trace).positions
                for lane in lanes
            ]
        )
        return cls(
            times=times,
            sensor=sensor,
            truth=truth,
            mode=mode,
            accuracy=np.array([lane.protocol.accuracy for lane in lanes]),
            sensor_uncertainty=np.array(
                [lane.protocol.sensor_uncertainty for lane in lanes]
            ),
            estimation_window=first.estimator.window,
            object_ids=[lane.object_id for lane in lanes],
            protocol_name=first.name,
            count_initial_update=count_initial_update,
            obs=obs,
        )

    # ------------------------------------------------------------------ #
    # the vectorised loop
    # ------------------------------------------------------------------ #
    def run(self):
        """Execute the simulation; returns a :class:`~repro.sim.fleet.FleetResult`.

        Per sample instant the loop performs the tick loop's exact sequence
        — decide (threshold on the predicted deviation), transmit+deliver
        (zero latency folds these into the reported-state columns), measure
        (server prediction against truth) — as a handful of whole-fleet
        array operations.
        """
        from repro.sim.fleet import FleetResult  # runtime: fleet imports us too

        store = self.store
        times = self.times
        n, t_count = store.n, len(times)
        linear = self.mode == LINEAR
        obs = self.obs
        estimate_span = None if obs is None else obs.span(
            "columnar.estimate", cat="sim", args={"lanes": n, "samples": t_count}
        )
        if linear:
            velocities, _speeds = estimate_traces(
                times, self.sensor, self.estimation_window
            )
        if estimate_span is not None:
            estimate_span.close()
        loop_span = None if obs is None else obs.span(
            "columnar.loop", cat="sim", args={"lanes": n, "samples": t_count}
        )
        threshold_counts = np.zeros(n, dtype=np.int64)
        errors = np.empty((n, t_count))
        us = store.accuracy
        up = store.sensor_uncertainty
        rep_pos = store.reported_position
        rep_vel = store.reported_velocity
        rep_time = store.reported_time
        sensor = self.sensor
        truth = self.truth
        time_list = times.tolist()
        for i, t in enumerate(time_list):
            pos = sensor[:, i, :]
            if i == 0:
                # INITIAL: the server knows nothing yet — everyone reports.
                rep_pos[:] = pos
                if linear:
                    rep_vel[:] = velocities[:, i, :]
                rep_time[:] = t
            else:
                if linear:
                    dt = t - rep_time
                    pred_x = rep_pos[:, 0] + rep_vel[:, 0] * dt
                    pred_y = rep_pos[:, 1] + rep_vel[:, 1] * dt
                else:
                    pred_x = rep_pos[:, 0]
                    pred_y = rep_pos[:, 1]
                dx = pos[:, 0] - pred_x
                dy = pos[:, 1] - pred_y
                deviation = np.sqrt(dx * dx + dy * dy)
                trig = deviation + up > us
                if trig.any():
                    rep_pos[trig] = pos[trig]
                    if linear:
                        rep_vel[trig] = velocities[trig, i, :]
                    rep_time[trig] = t
                    threshold_counts[trig] += 1
            # Server-side error at this instant: with zero latency the
            # freshly delivered states are already in the reported columns;
            # dt is exactly 0 for just-updated lanes, so the linear
            # prediction reduces to the reported position bit for bit.
            if linear:
                dt = t - rep_time
                srv_x = rep_pos[:, 0] + rep_vel[:, 0] * dt
                srv_y = rep_pos[:, 1] + rep_vel[:, 1] * dt
            else:
                srv_x = rep_pos[:, 0]
                srv_y = rep_pos[:, 1]
            ex = srv_x - truth[:, i, 0]
            ey = srv_y - truth[:, i, 1]
            errors[:, i] = np.sqrt(ex * ex + ey * ey)
        if loop_span is not None:
            loop_span.close()
        store.position[:] = sensor[:, -1, :]
        store.has_report[:] = True
        updates = threshold_counts + 1
        store.sequence[:] = updates
        store.updates[:] = updates
        store.bytes_sent[:] = updates * _BASE_UPDATE_BYTES
        if obs is not None:
            # The same deterministic counters the scalar fleet loop records
            # in _record_lane_metrics — the engines are bit-identical, so
            # the counts agree by construction.
            registry = obs.registry
            registry.counter("sim.lanes").inc(n)
            registry.counter("sim.samples").inc(n * t_count)
            registry.counter("sim.updates_sent").inc(int(updates.sum()))
            registry.counter("sim.bytes_sent").inc(int(store.bytes_sent.sum()))
            registry.counter("sim.error_samples").inc(n * t_count)
            registry.counter("sim.update_reason.initial").inc(n)
            threshold_total = int(threshold_counts.sum())
            if threshold_total:
                registry.counter("sim.update_reason.threshold").inc(threshold_total)
        duration_h = (
            float(times[-1] - times[0]) / 3600.0 if t_count > 1 else 0.0
        )
        counted = updates if self.count_initial_update else updates - 1
        results: Dict[str, SimulationResult] = {}
        threshold_list = threshold_counts.tolist()
        counted_list = counted.tolist()
        bytes_list = store.bytes_sent.tolist()
        us_list = us.tolist()
        for k, object_id in enumerate(store.object_ids):
            metrics = AccuracyMetrics()
            metrics.set_bound(us_list[k])
            metrics.record_batch(errors[k])
            reasons = {UpdateReason.INITIAL.value: 1}
            if threshold_list[k]:
                reasons[UpdateReason.THRESHOLD.value] = threshold_list[k]
            results[object_id] = SimulationResult(
                protocol_name=self.protocol_name,
                accuracy=us_list[k],
                duration_h=duration_h,
                updates=counted_list[k],
                bytes_sent=bytes_list[k],
                metrics=metrics,
                update_reasons=reasons,
            )
        return FleetResult(results=results)

    def channel_stats(self):
        """The shared channel's counters implied by the run (all delivered).

        Matches the :class:`~repro.service.channel.ChannelStats` a default
        fleet channel would have accumulated: zero latency and zero loss
        mean every sent message was delivered in the same instant.
        """
        from repro.service.channel import ChannelStats

        sent = int(self.store.updates.sum())
        size = int(self.store.bytes_sent.sum())
        return ChannelStats(
            messages_sent=sent,
            messages_delivered=sent,
            messages_lost=0,
            bytes_sent=size,
            bytes_delivered=size,
        )


def run_fleet_columnar(lanes, count_initial_update: bool = True, obs=None):
    """Run an eligible fleet through the columnar engine (lane-level API)."""
    return ColumnarFleetEngine.from_lanes(
        lanes, count_initial_update=count_initial_update, obs=obs
    ).run()
