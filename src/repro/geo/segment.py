"""Line-segment primitive.

The map-matching algorithm of the paper places the sensed position
perpendicularly onto a link of the road map (Fig. 5).  Links are polylines,
and polylines are sequences of :class:`Segment` objects, so the projection
machinery lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.vec import Vec2, as_vec, distance
from repro.geo.angles import bearing


@dataclass(frozen=True)
class Segment:
    """A directed straight segment between two planar points.

    Parameters
    ----------
    start, end:
        End points in metres.  The segment is directed: several algorithms
        (e.g. forward-tracking past the end of a link) rely on knowing which
        end is "ahead".
    """

    start: np.ndarray
    end: np.ndarray
    _length: float = field(init=False, repr=False, compare=False, default=0.0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", as_vec(self.start))
        object.__setattr__(self, "end", as_vec(self.end))
        object.__setattr__(self, "_length", distance(self.start, self.end))

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> float:
        """Length of the segment in metres."""
        return self._length

    @property
    def direction(self) -> np.ndarray:
        """Unit vector from start to end (zero vector for degenerate segments)."""
        if self._length == 0.0:
            return np.zeros(2)
        return (self.end - self.start) / self._length

    @property
    def bearing(self) -> float:
        """Compass bearing from start to end in radians."""
        return bearing(self.start, self.end)

    @property
    def midpoint(self) -> np.ndarray:
        """Middle point of the segment."""
        return (self.start + self.end) * 0.5

    def reversed(self) -> "Segment":
        """The same segment traversed in the opposite direction."""
        return Segment(self.end.copy(), self.start.copy())

    # ------------------------------------------------------------------ #
    # interpolation and projection
    # ------------------------------------------------------------------ #
    def point_at(self, offset: float) -> np.ndarray:
        """Point at arc-length *offset* metres from the start.

        Offsets are clamped to ``[0, length]`` so callers do not need to
        special-case rounding errors when walking along a polyline.
        """
        if self._length == 0.0:
            return self.start.copy()
        t = min(max(offset / self._length, 0.0), 1.0)
        return self.start + (self.end - self.start) * t

    def project_parameter(self, point: Vec2) -> float:
        """Parameter ``t`` in ``[0, 1]`` of the closest point to *point*."""
        p = as_vec(point)
        d = self.end - self.start
        denom = float(d[0] * d[0] + d[1] * d[1])
        if denom == 0.0:
            return 0.0
        t = float(np.dot(p - self.start, d)) / denom
        return min(1.0, max(0.0, t))

    def project(self, point: Vec2) -> np.ndarray:
        """Closest point on the segment to *point* (the paper's ``pc``)."""
        t = self.project_parameter(point)
        return self.start + (self.end - self.start) * t

    def project_offset(self, point: Vec2) -> float:
        """Arc-length offset (metres from start) of the projection of *point*."""
        return self.project_parameter(point) * self._length

    def distance_to(self, point: Vec2) -> float:
        """Shortest distance from *point* to the segment in metres."""
        return distance(self.project(point), point)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def bounds(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounds ``(min_x, min_y, max_x, max_y)``."""
        return (
            float(min(self.start[0], self.end[0])),
            float(min(self.start[1], self.end[1])),
            float(max(self.start[0], self.end[0])),
            float(max(self.start[1], self.end[1])),
        )

    def side_of(self, point: Vec2) -> int:
        """Which side of the directed segment *point* lies on.

        Returns ``+1`` for the left side, ``-1`` for the right side and ``0``
        for collinear points.
        """
        p = as_vec(point)
        d = self.end - self.start
        v = p - self.start
        c = float(d[0] * v[1] - d[1] * v[0])
        if c > 0:
            return 1
        if c < 0:
            return -1
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment(({self.start[0]:.1f}, {self.start[1]:.1f}) -> "
            f"({self.end[0]:.1f}, {self.end[1]:.1f}), length={self._length:.1f} m)"
        )
