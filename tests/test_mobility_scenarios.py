"""Unit tests for repro.mobility.scenarios."""

import numpy as np
import pytest

from repro.mobility.scenarios import (
    ScenarioName,
    build_scenario,
    corridor_route,
)
from repro.roadmap.elements import RoadClass
from repro.roadmap.generators import freeway_map


class TestCorridorRoute:
    def test_follows_motorway(self):
        roadmap = freeway_map(length_km=30.0, seed=0)
        route = corridor_route(roadmap, RoadClass.MOTORWAY)
        assert all(l.road_class == RoadClass.MOTORWAY for l in route.links)
        assert route.length >= 25_000.0

    def test_no_corridor_raises(self, straight_map):
        with pytest.raises(ValueError):
            corridor_route(straight_map, RoadClass.MOTORWAY)


class TestScenarioConstruction:
    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_scenario(ScenarioName.FREEWAY, scale=0.0)
        with pytest.raises(ValueError):
            build_scenario(ScenarioName.FREEWAY, scale=1.5)

    def test_build_by_string_name(self):
        scenario = build_scenario("freeway", scale=0.03)
        assert scenario.name is ScenarioName.FREEWAY

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            build_scenario("hovercraft", scale=0.1)


class TestScenarioProperties:
    def test_freeway_characteristics(self, tiny_freeway_scenario):
        summary = tiny_freeway_scenario.summary()
        # Intensive quantity: the average speed should be near the paper's 103 km/h.
        assert 85.0 <= summary["average_speed_kmh"] <= 120.0
        assert tiny_freeway_scenario.estimation_window == 2

    def test_city_characteristics(self, tiny_city_scenario):
        summary = tiny_city_scenario.summary()
        assert 20.0 <= summary["average_speed_kmh"] <= 50.0
        assert tiny_city_scenario.estimation_window == 4

    def test_interurban_characteristics(self, tiny_interurban_scenario):
        summary = tiny_interurban_scenario.summary()
        assert 45.0 <= summary["average_speed_kmh"] <= 80.0

    def test_walking_characteristics(self, tiny_walking_scenario):
        summary = tiny_walking_scenario.summary()
        assert 2.5 <= summary["average_speed_kmh"] <= 6.5
        assert tiny_walking_scenario.estimation_window == 8
        assert max(tiny_walking_scenario.us_values) <= 250.0

    def test_sensor_trace_alignment(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        assert len(scenario.sensor_trace) == len(scenario.true_trace)
        np.testing.assert_allclose(scenario.sensor_trace.times, scenario.true_trace.times)

    def test_sensor_noise_magnitude(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        errors = scenario.sensor_trace.positions - scenario.true_trace.positions
        magnitudes = np.hypot(errors[:, 0], errors[:, 1])
        assert magnitudes.mean() < 4 * scenario.sensor_sigma
        assert magnitudes.max() < 10 * scenario.sensor_sigma

    def test_truth_follows_route(self, tiny_freeway_scenario):
        scenario = tiny_freeway_scenario
        # Every 50th ground-truth point must lie on the route geometry.
        for position in scenario.true_trace.positions[::50]:
            _, _, dist = scenario.route.project(position)
            assert dist < 1.0

    def test_ground_truth_link_ids_exist(self, tiny_city_scenario):
        scenario = tiny_city_scenario
        assert len(scenario.journey.link_ids) == len(scenario.true_trace)
        assert all(scenario.roadmap.has_link(lid) for lid in scenario.journey.link_ids)

    def test_sample_interval_is_one_second(self, tiny_walking_scenario):
        assert tiny_walking_scenario.true_trace.sampling_interval == pytest.approx(1.0)

    def test_us_sweep_for_cars(self, tiny_city_scenario):
        assert min(tiny_city_scenario.us_values) == 20.0
        assert max(tiny_city_scenario.us_values) == 500.0
