"""Tests for the scenario library: registry, generated entries, fleet mix."""

import numpy as np
import pytest

from repro.experiments.library import (
    GENERATED_SPECS,
    FleetMix,
    build_library_scenario,
    describe_scenarios,
    fleet_lanes,
    get_entry,
    register_scenario,
    scenario_names,
)
from repro.mobility.generator import (
    AgentSpec,
    Degradation,
    GeneratorSpec,
    Topology,
    TrafficRegime,
    generate_scenario,
)
from repro.mobility.scenarios import ScenarioName
from repro.sim.runner import ScenarioSpec


class TestRegistry:
    def test_canonical_and_generated_names_registered(self):
        names = scenario_names()
        for canonical in ("freeway", "interurban", "city", "walking"):
            assert canonical in names
        for generated in (
            "rush_hour_city", "delivery_rounds", "commuter_mixed", "tunnel_freeway",
            "radial_commute", "night_corridor", "urban_canyon_walk",
            "interurban_stopandgo", "campus_courier",
        ):
            assert generated in names

    def test_at_least_eight_generated_scenarios(self):
        assert len(scenario_names("generated")) >= 8
        assert set(scenario_names("generated")) == set(GENERATED_SPECS)

    def test_get_entry_accepts_enum_members(self):
        assert get_entry(ScenarioName.FREEWAY).name == "freeway"
        assert get_entry("freeway") is get_entry(ScenarioName.FREEWAY)

    def test_unknown_name_lists_known_scenarios(self):
        with pytest.raises(ValueError, match="rush_hour_city"):
            get_entry("atlantis")

    def test_duplicate_registration_rejected(self):
        entry = get_entry("freeway")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(entry)

    def test_describe_scenarios_covers_registry(self):
        rows = describe_scenarios()
        assert {row["scenario"] for row in rows} == set(scenario_names())
        assert all(row["description"] for row in rows)
        assert all(row["category"] in ("canonical", "generated") for row in rows)

    def test_build_library_scenario_canonical_matches_enum_name(self):
        scenario = build_library_scenario("freeway", scale=0.03)
        assert scenario.key == "freeway"
        assert scenario.name is ScenarioName.FREEWAY

    @pytest.mark.parametrize("name", scenario_names("generated"))
    def test_generated_scenarios_build_and_are_runnable(self, name):
        scenario = ScenarioSpec(name=name, scale=0.15).build()
        assert scenario.key == name
        assert len(scenario.sensor_trace) == len(scenario.true_trace) > 50
        assert scenario.us_values
        assert scenario.route.length > 0


class TestGeneratedCompositions:
    def test_delivery_round_dwells_extend_duration(self):
        spec = GENERATED_SPECS["delivery_rounds"]
        without = GeneratorSpec(
            name=spec.name, description=spec.description, topology=spec.topology,
            regime=spec.regime,
            agent=AgentSpec(kind="delivery", n_stops=spec.agent.n_stops,
                            dwell_range=(0.0, 0.0)),
            route_length_m=spec.route_length_m, default_seed=spec.default_seed,
        )
        dwelling = generate_scenario(spec, scale=0.2)
        driving = generate_scenario(without, scale=0.2)
        # Identical round (same rng draws, same legs), but with zero-length
        # dwells the van never waits at a drop-off.
        assert np.isclose(dwelling.route.length, driving.route.length)
        assert dwelling.true_trace.duration > driving.true_trace.duration

    def test_tunnel_freeway_has_dropout_gaps(self):
        scenario = ScenarioSpec(name="tunnel_freeway", scale=0.15).build()
        gaps = np.diff(scenario.sensor_trace.times)
        assert gaps.max() > 1.5, "dropout windows should leave >1 s gaps"
        clean = generate_scenario(
            GeneratorSpec(
                name="tunnel_clean", description="no dropouts",
                topology=GENERATED_SPECS["tunnel_freeway"].topology,
                regime=GENERATED_SPECS["tunnel_freeway"].regime,
                agent=GENERATED_SPECS["tunnel_freeway"].agent,
                route_length_m=GENERATED_SPECS["tunnel_freeway"].route_length_m,
                default_seed=GENERATED_SPECS["tunnel_freeway"].default_seed,
            ),
            scale=0.15,
        )
        assert len(scenario.sensor_trace) < len(clean.sensor_trace)

    def test_commuter_mixed_spans_fast_and_slow_links(self):
        scenario = ScenarioSpec(name="commuter_mixed", scale=1.0).build()
        limits = {round(link.speed_limit, 2) for link in scenario.route.links}
        assert max(limits) > 30.0, "route should include motorway links"
        assert min(limits) < 20.0, "route should include city streets"

    def test_rush_hour_is_slower_than_free_flow(self):
        spec = GENERATED_SPECS["rush_hour_city"]
        rush = generate_scenario(spec, scale=0.15)
        free = generate_scenario(
            GeneratorSpec(
                name="free_city", description="same trip, empty streets",
                topology=spec.topology, regime=TrafficRegime(name="empty",
                speed_factor=0.92, stop_probability=0.0, speed_noise_sigma=0.05),
                agent=spec.agent, route_length_m=spec.route_length_m,
                default_seed=spec.default_seed,
            ),
            scale=0.15,
        )
        v_rush = rush.summary()["average_speed_kmh"]
        v_free = free.summary()["average_speed_kmh"]
        assert v_rush < v_free * 0.75

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(ValueError):
            Topology(kind="moebius")
        with pytest.raises(ValueError):
            AgentSpec(kind="submarine")
        with pytest.raises(ValueError):
            AgentSpec(kind="car", route_style="teleport")
        with pytest.raises(ValueError):
            Degradation(dropout_fraction=0.95)
        with pytest.raises(ValueError):
            generate_scenario(GENERATED_SPECS["rush_hour_city"], scale=0.0)


class TestFleetMix:
    def test_parse_full_form(self):
        mix = FleetMix.parse("rush_hour_city:map:100:25")
        assert mix == FleetMix("rush_hour_city", "map", 100.0, 25)

    def test_parse_defaults_count_to_one(self):
        assert FleetMix.parse("walking:linear:50").count == 1

    @pytest.mark.parametrize("text", [
        "walking", "walking:linear", "walking:linear:50:3:9",
        "atlantis:linear:50", "walking:warp:50", "walking:linear:-5",
        "walking:linear:0", "walking:linear:nan", "walking:linear:inf",
    ])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            FleetMix.parse(text)

    def test_fleet_lanes_share_cached_scenario_but_not_protocols(self):
        lanes = fleet_lanes([FleetMix("radial_commute", "linear", 100.0, 3)], scale=0.15)
        assert len(lanes) == 3
        assert len({id(l.protocol) for l in lanes}) == 3
        assert len({id(l.sensor_trace) for l in lanes}) == 1
        assert len({l.object_id for l in lanes}) == 3
