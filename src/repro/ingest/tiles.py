"""Streaming tiled ingestion: bounded-memory import of metro-scale extracts.

The one-shot pipeline in :mod:`repro.ingest.cache` materialises the whole
extract — node table, way list, segment list, compiled map — before anything
is written.  That is fine for town fixtures and hopeless for a region with a
million intersections.  This module adds the big-map path:

* :func:`stream_osm_to_tiles` parses an OSM XML extract in **three streaming
  passes** (way scan → node positions → segment emission), never holding
  more than the road network itself in memory (the extract's non-highway
  bulk — POIs, buildings, relations — is skipped element by element).
  Segments are bucketed into **spatially keyed tiles** and appended to
  per-tile JSONL files as buffers fill, so peak memory is bounded by the
  flush threshold, not the extract size.
* :class:`TileStore` is the on-disk result: an ``index.json`` plus one
  ``tile_<tx>_<ty>.jsonl`` per occupied tile.  Tiles load **lazily** through
  an LRU cache; a bounding-box query touches only the tiles it overlaps.
* :func:`write_region_tiles` generates the deterministic synthetic region
  fixture (a jittered grid with a motorway/primary/secondary/residential
  speed hierarchy) used by ``benchmarks/bench_bigmap.py`` to exercise the
  contraction-hierarchy engine at the ~1M-node scale.  The generator writes
  tiles directly — the full map never exists in memory.

Tile stores live under the same content-hash cache directory scheme as
compiled maps (:func:`tile_cache_dir` mirrors :func:`repro.ingest.cache.cache_key`):
re-importing an unchanged extract with unchanged tiling options finds the
finished store and parses nothing.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union
from xml.etree import ElementTree

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.geodesy import LocalProjection
from repro.ingest.compact import Segment, segments_to_roadmap
from repro.ingest.osm import load_osm, normalize_way, project_network
from repro.roadmap.elements import RoadClass
from repro.roadmap.graph import RoadMap
from repro.roadmap.hierarchy import link_tie_key

#: Bump when the on-disk tile layout or record schema changes; part of the
#: content-hash key so stale stores are never picked up.
TILE_FORMAT_VERSION = 1

#: Default tile edge length in metres.  At raw OSM densities this keeps a
#: tile to a few thousand segments — small enough to load lazily, large
#: enough that the index stays tiny.
DEFAULT_TILE_SIZE_M = 4000.0

_INDEX_NAME = "index.json"


def _tile_of(x: float, y: float, tile_size: float) -> Tuple[int, int]:
    """The ``(tx, ty)`` tile containing a planar point."""
    return (int(math.floor(x / tile_size)), int(math.floor(y / tile_size)))


def _segment_record(segment: Segment) -> list:
    """The JSONL row for one segment (coordinates rounded to centimetres)."""
    points = [[round(float(x), 2), round(float(y), 2)] for x, y in segment.points]
    return [
        segment.a,
        segment.b,
        points,
        segment.road_class.value,
        segment.speed_limit,
        segment.oneway,
        segment.name,
    ]


def _record_segment(row: list) -> Segment:
    """Rebuild a :class:`Segment` from its JSONL row."""
    return Segment(
        a=row[0],
        b=row[1],
        points=np.asarray(row[2], dtype=float),
        road_class=RoadClass(row[3]),
        speed_limit=row[4],
        oneway=row[5],
        name=row[6],
    )


# --------------------------------------------------------------------------- #
# writer
# --------------------------------------------------------------------------- #
class TileWriter:
    """Append segments into spatially keyed tile files with bounded buffers.

    Segments are keyed by the tile containing their midpoint (tiles are
    storage buckets, not graph partitions: the merged graph glues on shared
    node ids, so a segment crossing a tile boundary needs no special
    handling).  Buffers flush to per-tile JSONL files whenever the total
    buffered row count reaches ``buffer_segments``, so peak memory is
    independent of the input size.
    """

    def __init__(
        self,
        root: Union[str, Path],
        tile_size_m: float = DEFAULT_TILE_SIZE_M,
        buffer_segments: int = 20000,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.tile_size_m = float(tile_size_m)
        self.buffer_segments = int(buffer_segments)
        self._buffers: Dict[Tuple[int, int], List[str]] = {}
        self._buffered = 0
        self._counts: Dict[Tuple[int, int], int] = {}
        self._bounds: Optional[List[float]] = None
        self._nodes: set = set()
        self._total = 0

    def add(self, segment: Segment) -> None:
        """Buffer one segment for its midpoint tile."""
        points = segment.points
        mx = float(points[0][0] + points[-1][0]) / 2.0
        my = float(points[0][1] + points[-1][1]) / 2.0
        key = _tile_of(mx, my, self.tile_size_m)
        row = json.dumps(_segment_record(segment), separators=(",", ":"))
        self._buffers.setdefault(key, []).append(row)
        self._counts[key] = self._counts.get(key, 0) + 1
        self._buffered += 1
        self._total += 1
        self._nodes.add(segment.a)
        self._nodes.add(segment.b)
        xs = (float(points[0][0]), float(points[-1][0]))
        ys = (float(points[0][1]), float(points[-1][1]))
        if self._bounds is None:
            self._bounds = [min(xs), min(ys), max(xs), max(ys)]
        else:
            b = self._bounds
            b[0] = min(b[0], *xs)
            b[1] = min(b[1], *ys)
            b[2] = max(b[2], *xs)
            b[3] = max(b[3], *ys)
        if self._buffered >= self.buffer_segments:
            self._flush()

    def _flush(self) -> None:
        for key, rows in self._buffers.items():
            path = self.root / tile_file_name(*key)
            with path.open("a", encoding="utf-8") as handle:
                handle.write("\n".join(rows))
                handle.write("\n")
        self._buffers.clear()
        self._buffered = 0

    def close(
        self,
        kind: str,
        origin: Tuple[float, float] = (0.0, 0.0),
        stats: Optional[Dict[str, object]] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Flush remaining buffers and write ``index.json``; returns its path."""
        self._flush()
        tiles = {
            f"{tx},{ty}": {"file": tile_file_name(tx, ty), "segments": count}
            for (tx, ty), count in sorted(self._counts.items())
        }
        index = {
            "format": "repro-tiles",
            "version": TILE_FORMAT_VERSION,
            "kind": kind,
            "origin": [float(origin[0]), float(origin[1])],
            "tile_size_m": self.tile_size_m,
            "bounds": self._bounds or [0.0, 0.0, 0.0, 0.0],
            "segments": self._total,
            "nodes": len(self._nodes),
            "tiles": tiles,
            "stats": dict(stats or {}),
        }
        if extra:
            index.update(extra)
        path = self.root / _INDEX_NAME
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(index, indent=1, sort_keys=True), encoding="utf-8")
        tmp.replace(path)
        return path


def tile_file_name(tx: int, ty: int) -> str:
    """File name of the tile at grid coordinates ``(tx, ty)``."""
    return f"tile_{tx}_{ty}.jsonl"


# --------------------------------------------------------------------------- #
# store
# --------------------------------------------------------------------------- #
class TileStore:
    """A finished tile directory: lazy, LRU-cached access to its segments.

    ``max_loaded_tiles`` bounds resident memory during spatial queries;
    whole-store iteration (:meth:`iter_segments`) streams tile files
    directly and never populates the cache.
    """

    def __init__(self, root: Union[str, Path], max_loaded_tiles: int = 16):
        self.root = Path(root)
        index_path = self.root / _INDEX_NAME
        if not index_path.exists():
            raise FileNotFoundError(f"not a tile store (no {_INDEX_NAME}): {self.root}")
        self.index = json.loads(index_path.read_text(encoding="utf-8"))
        if self.index.get("format") != "repro-tiles":
            raise ValueError(f"unrecognised tile index format in {index_path}")
        if self.index.get("version") != TILE_FORMAT_VERSION:
            raise ValueError(
                f"tile format version {self.index.get('version')} != {TILE_FORMAT_VERSION}"
            )
        self.tile_size_m = float(self.index["tile_size_m"])
        self.max_loaded_tiles = int(max_loaded_tiles)
        self._cache: "OrderedDict[Tuple[int, int], List[Segment]]" = OrderedDict()
        self.tiles_loaded = 0  # lifetime load count (cache misses), for tests

    # -- basic facts ---------------------------------------------------- #
    @property
    def kind(self) -> str:
        return str(self.index.get("kind", "osm"))

    @property
    def origin(self) -> Tuple[float, float]:
        lat, lon = self.index.get("origin", (0.0, 0.0))
        return (float(lat), float(lon))

    @property
    def num_segments(self) -> int:
        return int(self.index["segments"])

    @property
    def num_nodes(self) -> int:
        return int(self.index["nodes"])

    def bounds(self) -> BoundingBox:
        minx, miny, maxx, maxy = self.index["bounds"]
        return BoundingBox(minx, miny, maxx, maxy)

    def tile_keys(self) -> List[Tuple[int, int]]:
        """All occupied tiles, sorted (the canonical iteration order)."""
        keys = []
        for token in self.index["tiles"]:
            tx, ty = token.split(",")
            keys.append((int(tx), int(ty)))
        keys.sort()
        return keys

    # -- tile access ---------------------------------------------------- #
    def _read_tile(self, tx: int, ty: int) -> List[Segment]:
        path = self.root / self.index["tiles"][f"{tx},{ty}"]["file"]
        segments = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    segments.append(_record_segment(json.loads(line)))
        return segments

    def load_tile(self, tx: int, ty: int) -> List[Segment]:
        """Segments of one tile, through the LRU cache."""
        key = (tx, ty)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        segments = self._read_tile(tx, ty)
        self.tiles_loaded += 1
        self._cache[key] = segments
        if len(self._cache) > self.max_loaded_tiles:
            self._cache.popitem(last=False)
        return segments

    def iter_segments(self) -> Iterator[Segment]:
        """Every segment, streamed in sorted-tile order (deterministic)."""
        for tx, ty in self.tile_keys():
            path = self.root / self.index["tiles"][f"{tx},{ty}"]["file"]
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        yield _record_segment(json.loads(line))

    def tiles_in_box(self, box: BoundingBox) -> List[Tuple[int, int]]:
        """Occupied tiles overlapping a planar bounding box."""
        t0 = _tile_of(box.min_x, box.min_y, self.tile_size_m)
        t1 = _tile_of(box.max_x, box.max_y, self.tile_size_m)
        keys = []
        for tx, ty in self.tile_keys():
            if t0[0] <= tx <= t1[0] and t0[1] <= ty <= t1[1]:
                keys.append((tx, ty))
        return keys

    def segments_in_box(self, box: BoundingBox) -> List[Segment]:
        """Segments whose midpoint tile overlaps *box* (lazy tile loads)."""
        out: List[Segment] = []
        for tx, ty in self.tiles_in_box(box):
            out.extend(self.load_tile(tx, ty))
        return out

    # -- graph assembly ------------------------------------------------- #
    def to_roadmap(
        self,
        metadata: Optional[Dict[str, object]] = None,
        index_cell_size: float = 250.0,
    ) -> RoadMap:
        """Merge every tile into one :class:`RoadMap` (small stores only).

        Link ids are assigned in :meth:`iter_segments` order, matching
        :meth:`routing_links` — a planner built here and a routing graph
        streamed from the same store describe the same network.
        """
        meta = {
            "source": str(self.root),
            "kind": self.kind,
            "origin": list(self.origin),
            "tiles": len(self.index["tiles"]),
        }
        if metadata:
            meta.update(metadata)
        return segments_to_roadmap(
            list(self.iter_segments()), metadata=meta, index_cell_size=index_cell_size
        )

    def roadmap_for_box(
        self,
        box: BoundingBox,
        metadata: Optional[Dict[str, object]] = None,
        index_cell_size: float = 250.0,
    ) -> RoadMap:
        """A :class:`RoadMap` of just the tiles overlapping *box*."""
        segments = self.segments_in_box(box)
        meta = {"source": str(self.root), "clip": box.as_tuple()}
        if metadata:
            meta.update(metadata)
        return segments_to_roadmap(segments, metadata=meta, index_cell_size=index_cell_size)

    def routing_links(self, weight: str = "length") -> Iterator[Tuple[int, int, int, float]]:
        """Stream ``(link_id, from, to, weight)`` rows for the whole store.

        Link ids follow the :func:`segments_to_roadmap` assignment rule —
        segment order, forward link then reverse link — so paths found on a
        :class:`~repro.roadmap.hierarchy.RoutingGraph` built from this
        stream quote the same link ids as the merged road map, without the
        store ever being merged.
        """
        if weight not in ("length", "travel_time"):
            raise ValueError(f"unknown weight {weight!r}")
        link_id = 0
        for segment in self.iter_segments():
            points = segment.points
            if len(points) == 2:
                # np.hypot, not math.hypot: Polyline computes lengths with
                # the C-library hypot, and the two can differ by one ULP —
                # enough to break bit-identity with the merged road map.
                w = float(
                    np.hypot(
                        float(points[1][0]) - float(points[0][0]),
                        float(points[1][1]) - float(points[0][1]),
                    )
                )
            else:
                w = segment.length
            if weight == "travel_time":
                speed = segment.speed_limit
                if speed is None:
                    speed = segment.road_class.default_speed_limit
                w = w / speed
            yield (link_id, segment.a, segment.b, w)
            link_id += 1
            if not segment.oneway:
                yield (link_id, segment.b, segment.a, w)
                link_id += 1


# --------------------------------------------------------------------------- #
# streaming OSM import
# --------------------------------------------------------------------------- #
def _iter_xml_ways(source: Path) -> Iterator:
    """Yield normalised :class:`OSMWay` objects from one streaming XML pass."""
    for _, element in ElementTree.iterparse(str(source), events=("end",)):
        if element.tag == "way":
            refs = [int(nd.attrib["ref"]) for nd in element.findall("nd")]
            tags = {
                tag.attrib.get("k", ""): tag.attrib.get("v", "")
                for tag in element.findall("tag")
            }
            if "highway" in tags:
                way = normalize_way(int(element.attrib["id"]), refs, tags)
                if way is not None:
                    yield way
            element.clear()
        elif element.tag in ("node", "relation"):
            element.clear()


def stream_osm_to_tiles(
    source: Union[str, Path],
    out_dir: Union[str, Path],
    tile_size_m: float = DEFAULT_TILE_SIZE_M,
    origin: Optional[Tuple[float, float]] = None,
    buffer_segments: int = 20000,
) -> TileStore:
    """Parse an OSM extract into a tile store without materialising it.

    XML extracts go through three streaming passes:

    1. **way scan** — collect the node ids the road network actually
       references (memory: one id per network node, nothing per POI),
    2. **node scan** — record ``(lat, lon)`` for exactly those ids and
       derive the projection origin from their bounding box,
    3. **segment emission** — re-walk the ways, project each consecutive
       node pair and append it to its tile through a bounded
       :class:`TileWriter` buffer.

    JSON (Overpass) extracts are fixture-sized by construction, so they
    take the in-memory parser and are tiled from its output.
    """
    source = Path(source)
    out = Path(out_dir)
    head = source.read_text(encoding="utf-8", errors="ignore")[:256].lstrip()
    if head.startswith("{"):
        return _tiles_from_small_extract(source, out, tile_size_m, origin, buffer_segments)

    # Pass 1: which nodes does the road network use?
    needed: set = set()
    way_count = 0
    for way in _iter_xml_ways(source):
        way_count += 1
        needed.update(way.nodes)
    if not needed:
        raise ValueError(f"no road network in {source}")

    # Pass 2: positions of exactly those nodes.
    positions_ll: Dict[int, Tuple[float, float]] = {}
    for _, element in ElementTree.iterparse(str(source), events=("end",)):
        if element.tag == "node":
            node_id = int(element.attrib["id"])
            if node_id in needed:
                positions_ll[node_id] = (
                    float(element.attrib["lat"]),
                    float(element.attrib["lon"]),
                )
        element.clear()
    if origin is None:
        lats = [ll[0] for ll in positions_ll.values()]
        lons = [ll[1] for ll in positions_ll.values()]
        origin = ((min(lats) + max(lats)) / 2.0, (min(lons) + max(lons)) / 2.0)
    projection = LocalProjection(*origin)
    projected: Dict[int, Tuple[float, float]] = {}
    for node_id, (lat, lon) in positions_ll.items():
        x, y = projection.to_local(lat, lon)
        projected[node_id] = (float(x), float(y))
    del positions_ll

    # Pass 3: emit per-node-pair segments into tiles.
    writer = TileWriter(out, tile_size_m=tile_size_m, buffer_segments=buffer_segments)
    missing_refs = 0
    emitted_ways = 0
    for way in _iter_xml_ways(source):
        refs = [r for r in way.nodes if r in projected]
        missing_refs += len(way.nodes) - len(refs)
        deduped: List[int] = []
        for ref in refs:
            if not deduped or deduped[-1] != ref:
                deduped.append(ref)
        if len(deduped) < 2:
            continue
        emitted_ways += 1
        for a, b in zip(deduped, deduped[1:]):
            pa, pb = projected[a], projected[b]
            if math.hypot(pb[0] - pa[0], pb[1] - pa[1]) <= 1e-9:
                continue
            writer.add(
                Segment(
                    a=a,
                    b=b,
                    points=np.array([pa, pb], dtype=float),
                    road_class=way.road_class,
                    speed_limit=way.speed_limit,
                    oneway=way.oneway == "forward",
                    name=way.name,
                )
            )
    writer.close(
        kind="osm",
        origin=origin,
        stats={
            "source": source.name,
            "highway_ways": way_count,
            "emitted_ways": emitted_ways,
            "network_nodes": len(projected),
            "missing_node_refs": missing_refs,
        },
    )
    return TileStore(out)


def _tiles_from_small_extract(
    source: Path,
    out: Path,
    tile_size_m: float,
    origin: Optional[Tuple[float, float]],
    buffer_segments: int,
) -> TileStore:
    """Tile a fixture-sized (JSON) extract via the in-memory parser."""
    network = load_osm(source)
    projected = project_network(network, origin=origin)
    writer = TileWriter(out, tile_size_m=tile_size_m, buffer_segments=buffer_segments)
    for way in projected.network.ways:
        for a, b in zip(way.nodes, way.nodes[1:]):
            pa = projected.positions[a]
            pb = projected.positions[b]
            if float(np.hypot(*(pb - pa))) <= 1e-9:
                continue
            writer.add(
                Segment(
                    a=a,
                    b=b,
                    points=np.vstack((pa, pb)),
                    road_class=way.road_class,
                    speed_limit=way.speed_limit,
                    oneway=way.oneway == "forward",
                    name=way.name,
                )
            )
    writer.close(
        kind="osm",
        origin=projected.origin,
        stats={"source": source.name, "highway_ways": len(projected.network.ways)},
    )
    return TileStore(out)


def tile_cache_dir(
    source: Union[str, Path],
    cache_dir: Union[str, Path],
    tile_size_m: float = DEFAULT_TILE_SIZE_M,
    origin: Optional[Tuple[float, float]] = None,
) -> Path:
    """The content-hash-keyed directory a tiling of *source* belongs in.

    Mirrors :func:`repro.ingest.cache.cache_key`: the key covers the extract
    bytes, the tiling options and the format version, so any change to
    either produces a fresh directory instead of mixing layouts.
    """
    source = Path(source)
    digest = hashlib.sha256(source.read_bytes()).hexdigest()
    key_material = json.dumps(
        {
            "content": digest,
            "tile_size_m": float(tile_size_m),
            "origin": list(origin) if origin is not None else None,
            "tile_format": TILE_FORMAT_VERSION,
        },
        sort_keys=True,
    )
    key = hashlib.sha256(key_material.encode("utf-8")).hexdigest()[:16]
    return Path(cache_dir) / f"{source.stem}-tiles-{key}"


def import_tiles(
    source: Union[str, Path],
    cache_dir: Union[str, Path],
    tile_size_m: float = DEFAULT_TILE_SIZE_M,
    origin: Optional[Tuple[float, float]] = None,
    buffer_segments: int = 20000,
) -> Tuple[TileStore, bool]:
    """Tile an extract under *cache_dir*, reusing a finished store if present.

    Returns ``(store, cached)`` — ``cached`` is ``True`` when the
    content-hash key already had a complete ``index.json``.
    """
    target = tile_cache_dir(source, cache_dir, tile_size_m=tile_size_m, origin=origin)
    if (target / _INDEX_NAME).exists():
        return TileStore(target), True
    store = stream_osm_to_tiles(
        source,
        target,
        tile_size_m=tile_size_m,
        origin=origin,
        buffer_segments=buffer_segments,
    )
    return store, False


# --------------------------------------------------------------------------- #
# synthetic big-region fixture
# --------------------------------------------------------------------------- #
#: Speed (m/s) per road class in the synthetic region.  The spread is what
#: gives the region a usable hierarchy: long trips climb onto primaries and
#: motorways quickly, which is exactly the structure contraction
#: hierarchies exploit.
REGION_SPEEDS = {
    RoadClass.MOTORWAY: 33.0,
    RoadClass.PRIMARY: 22.0,
    RoadClass.SECONDARY: 14.0,
    RoadClass.RESIDENTIAL: 8.0,
}

#: Grid line *i* carries a motorway every 64 lines, a primary every 16, a
#: secondary every 4, residential otherwise.
def _region_line_class(i: int) -> RoadClass:
    if i % 64 == 0:
        return RoadClass.MOTORWAY
    if i % 16 == 0:
        return RoadClass.PRIMARY
    if i % 4 == 0:
        return RoadClass.SECONDARY
    return RoadClass.RESIDENTIAL


def region_node_id(row: int, col: int, ncols: int) -> int:
    """Node id of grid position ``(row, col)`` — row-major."""
    return row * ncols + col


def region_node_position(node_id: int, ncols: int, spacing_m: float = 100.0) -> Tuple[float, float]:
    """Deterministic jittered planar position of a region node.

    The jitter (±15 m from a hash of the node id) makes every link length
    unique, which keeps shortest paths unique and the contraction
    hierarchy lean; it is recomputed here rather than stored so callers can
    pick query endpoints on the 1M-node region without loading any tile.
    """
    row, col = divmod(node_id, ncols)
    h = link_tie_key(node_id, 0x5EED)
    jx = ((h & 0xFFFFF) / float(0xFFFFF) - 0.5) * 30.0
    jy = (((h >> 20) & 0xFFFFF) / float(0xFFFFF) - 0.5) * 30.0
    return (col * spacing_m + jx, row * spacing_m + jy)


def write_region_tiles(
    out_dir: Union[str, Path],
    nrows: int,
    ncols: int,
    spacing_m: float = 100.0,
    tile_nodes: int = 128,
    buffer_segments: int = 50000,
) -> TileStore:
    """Generate the synthetic region fixture directly as a tile store.

    The region is an ``nrows × ncols`` jittered grid (two-way everywhere)
    with the :data:`REGION_SPEEDS` road hierarchy on lines chosen by
    :func:`_region_line_class`.  Generation is fully deterministic (hash
    jitter, no RNG) and streaming: segments go straight into bounded
    :class:`TileWriter` buffers, so a 1M-node region is written in a few
    hundred MB of resident memory regardless of size.
    """
    if nrows < 2 or ncols < 2:
        raise ValueError("a region needs at least a 2x2 grid")
    writer = TileWriter(
        out_dir,
        tile_size_m=tile_nodes * spacing_m,
        buffer_segments=buffer_segments,
    )

    def _segment(na: int, nb: int, road_class: RoadClass) -> Segment:
        pa = region_node_position(na, ncols, spacing_m)
        pb = region_node_position(nb, ncols, spacing_m)
        return Segment(
            a=na,
            b=nb,
            points=np.array([pa, pb], dtype=float),
            road_class=road_class,
            speed_limit=REGION_SPEEDS[road_class],
            oneway=False,
            name="",
        )

    for row in range(nrows):
        row_class = _region_line_class(row)
        for col in range(ncols):
            nid = region_node_id(row, col, ncols)
            if col + 1 < ncols:
                writer.add(_segment(nid, nid + 1, row_class))
            if row + 1 < nrows:
                col_class = _region_line_class(col)
                writer.add(_segment(nid, nid + ncols, col_class))
    writer.close(
        kind="synthetic-region",
        origin=(0.0, 0.0),
        stats={"generator": "write_region_tiles"},
        extra={
            "region": {
                "nrows": nrows,
                "ncols": ncols,
                "spacing_m": spacing_m,
                "tile_nodes": tile_nodes,
            }
        },
    )
    return TileStore(out_dir)
