"""Trace I/O.

Traces are stored as plain CSV (``time,x,y`` in seconds and metres) — the
format the paper describes for its receiver output ("its output has been
written to a file every second") — and optionally as CSV with WGS-84
coordinates (``time,lat,lon``) for interoperability with real GPS logs.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.geo.geodesy import LocalProjection
from repro.traces.trace import Trace


def save_trace_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Write *trace* as ``time,x,y`` CSV (seconds, metres)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "x", "y"])
        for time, (x, y) in zip(trace.times, trace.positions):
            writer.writerow([f"{time:.3f}", f"{x:.3f}", f"{y:.3f}"])


def load_trace_csv(path: Union[str, Path], name: Optional[str] = None) -> Trace:
    """Read a trace written by :func:`save_trace_csv`."""
    path = Path(path)
    times = []
    positions = []
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not {"time", "x", "y"} <= set(reader.fieldnames):
            raise ValueError(f"{path}: expected columns time,x,y")
        for row in reader:
            times.append(float(row["time"]))
            positions.append((float(row["x"]), float(row["y"])))
    return Trace(times, np.array(positions), name=name or path.stem)


def load_trace_wgs84_csv(
    path: Union[str, Path],
    projection: Optional[LocalProjection] = None,
    name: Optional[str] = None,
) -> Trace:
    """Read a ``time,lat,lon`` CSV and project it into local planar metres.

    When *projection* is omitted, a projection centred on the first fix is
    created — the natural choice when importing a standalone GPS log.
    """
    path = Path(path)
    times = []
    lats = []
    lons = []
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not {"time", "lat", "lon"} <= set(reader.fieldnames):
            raise ValueError(f"{path}: expected columns time,lat,lon")
        for row in reader:
            times.append(float(row["time"]))
            lats.append(float(row["lat"]))
            lons.append(float(row["lon"]))
    if not times:
        raise ValueError(f"{path}: empty trace")
    if projection is None:
        projection = LocalProjection(ref_lat=lats[0], ref_lon=lons[0])
    positions = projection.to_local_array(np.array(lats), np.array(lons))
    return Trace(times, positions, name=name or path.stem)
