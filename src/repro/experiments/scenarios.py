"""Scenario construction with caching.

Building a scenario (generating the map, planning the route, simulating the
journey) is by far the most expensive part of an experiment, and every
figure reuses the same scenario for all of its protocol curves.  Since the
fleet refactor the cache itself lives in :mod:`repro.sim.runner` (keyed by
:class:`~repro.sim.runner.ScenarioSpec`, shared with the sweep runner and
its worker processes); this module keeps the convenient name-based
interface the experiments use.  Names resolve through the scenario library
(:mod:`repro.experiments.library`), so the canonical four patterns and
every generated scenario are equally available here.
"""

from __future__ import annotations

from repro.mobility.scenarios import Scenario, ScenarioName
from repro.sim.runner import ScenarioSpec
from repro.sim.runner import clear_scenario_cache as _clear_runner_cache


def get_scenario(name: ScenarioName | str, scale: float = 1.0, seed: int | None = None) -> Scenario:
    """Return the (cached) scenario *name* at the given *scale*.

    Parameters
    ----------
    name:
        Any name in the scenario library: the canonical ``freeway``,
        ``interurban``, ``city`` and ``walking`` patterns or a generated
        scenario such as ``rush_hour_city`` (see
        :func:`repro.experiments.library.scenario_names`).
    scale:
        Route-length scale factor in ``(0, 1]``; 1.0 matches the paper's
        trace lengths (or the generated scenario's full route).
    seed:
        Scenario seed; ``None`` uses each scenario's default seed.
    """
    # ScenarioSpec.__post_init__ resolves both plain strings and
    # ScenarioName members through the library registry.
    return ScenarioSpec(name=name, scale=float(scale), seed=seed).build()


def clear_scenario_cache() -> None:
    """Drop all cached scenarios (used by tests that need fresh randomness)."""
    _clear_runner_cache()
