"""E1 — Table 1: characteristics of the traces used for the simulation.

Regenerates the paper's Table 1 (length, duration, average and maximum speed
of the four movement scenarios) from the synthetic scenario generators and
prints it next to the paper's reference values.
"""

from repro.experiments.report import format_table
from repro.experiments.tables import table1

from conftest import run_once


def test_table1(benchmark, scale):
    rows = run_once(benchmark, table1, scale=scale)
    print()
    print(format_table([row.as_dict() for row in rows], title="Table 1 (measured vs paper)"))
    # Sanity of the reproduction: all four scenarios present, speeds ordered
    # freeway > inter-urban > city > walking as in the paper.
    speeds = [row.measured.average_speed_kmh for row in rows]
    assert len(rows) == 4
    assert speeds[0] > speeds[1] > speeds[2] > speeds[3]
