"""Deterministic synthetic OSM extracts for tests, benchmarks and demos.

Real OSM extracts cannot be fetched in CI (no network) and are too big to
commit, so the test suite and the ingest benchmark run the pipeline on
*synthetic* extracts: :func:`synthetic_town_xml` renders a small town —
with everything that makes real OSM data awkward — as a valid ``.osm``
document, byte-identical for a given seed and parameter set:

* an avenue grid whose edges are bead chains of short segments (degree-2
  nodes every ~``chain_step_m``, with curvature and jitter), the fodder for
  the contraction pass;
* border avenues tagged ``secondary``, a ``primary`` south bypass with
  ``maxspeed=none``, inner streets mixing ``maxspeed`` unit spellings
  (``30``, ``30 mph``) and untagged defaults;
* a one-way pair (``oneway=yes`` and ``oneway=-1``) among the north-south
  streets;
* diagonal ``footway`` shortcuts (road class ``footpath``);
* cul-de-sac stubs (``highway=service``, shorter than the default stub
  threshold), a disconnected road island, a ``highway=proposed`` way, a
  tagless building way, a relation, a duplicated ``nd`` ref and a dangling
  ref to a missing node — every parser/conditioning stat gets exercised.

The committed fixture ``tests/data/miniville.osm`` is exactly
``synthetic_town_xml(seed=7)`` (asserted by a test), so the bundled file
can never drift from the generator.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.geo.geodesy import LocalProjection

#: Geodesic anchor of every fixture town (Stuttgart, the paper's home).
DEFAULT_ORIGIN = (48.783, 9.183)

_Node = Tuple[int, float, float]  # id, lat, lon
_Way = Tuple[int, List[int], Dict[str, str]]


def _town_elements(
    seed: int = 0,
    rows: int = 6,
    cols: int = 6,
    spacing_m: float = 220.0,
    chain_step_m: float = 70.0,
    include_clutter: bool = True,
    origin: Tuple[float, float] = DEFAULT_ORIGIN,
) -> Tuple[List[_Node], List[_Way], List[int]]:
    """The town as raw OSM elements: ``(nodes, ways, relation member ids)``."""
    if rows < 3 or cols < 3:
        raise ValueError("the town needs at least a 3x3 junction grid")
    if spacing_m <= 0 or chain_step_m <= 0:
        raise ValueError("spacing_m and chain_step_m must be positive")
    rng = random.Random(seed)
    projection = LocalProjection(*origin)
    nodes: List[_Node] = []
    ways: List[_Way] = []

    def add_node(node_id: int, x: float, y: float) -> int:
        lat, lon = projection.to_geodetic((x, y))
        nodes.append((node_id, float(lat), float(lon)))
        return node_id

    # ------------------------------------------------------------------ #
    # junction grid (jittered so no two streets meet at an exact angle)
    # ------------------------------------------------------------------ #
    junction: Dict[Tuple[int, int], int] = {}
    junction_xy: Dict[int, Tuple[float, float]] = {}
    for r in range(rows):
        for c in range(cols):
            node_id = 1000 + r * cols + c
            x = (c - (cols - 1) / 2.0) * spacing_m + rng.uniform(-8.0, 8.0)
            y = (r - (rows - 1) / 2.0) * spacing_m + rng.uniform(-8.0, 8.0)
            junction[(r, c)] = add_node(node_id, x, y)
            junction_xy[node_id] = (x, y)

    chain_id = 10_000

    def chain_between(a: int, b: int) -> List[int]:
        """Bead-chain node ids strictly between two junctions (bowed)."""
        nonlocal chain_id
        ax, ay = junction_xy[a]
        bx, by = junction_xy[b]
        dist = math.hypot(bx - ax, by - ay)
        steps = max(1, round(dist / chain_step_m))
        if steps < 2:
            return []
        ux, uy = (bx - ax) / dist, (by - ay) / dist
        px, py = -uy, ux  # unit perpendicular
        bow = rng.uniform(-10.0, 10.0)
        out: List[int] = []
        for i in range(1, steps):
            t = i / steps
            wobble = bow * math.sin(math.pi * t) + rng.uniform(-3.0, 3.0)
            x = ax + (bx - ax) * t + px * wobble
            y = ay + (by - ay) * t + py * wobble
            chain_id += 1
            out.append(add_node(chain_id, x, y))
        return out

    way_id = 100

    def add_way(refs: List[int], tags: Dict[str, str]) -> int:
        nonlocal way_id
        way_id += 1
        ways.append((way_id, refs, tags))
        return way_id

    def street_refs(points: List[int]) -> List[int]:
        refs = [points[0]]
        for a, b in zip(points, points[1:]):
            refs.extend(chain_between(a, b))
            refs.append(b)
        return refs

    # ------------------------------------------------------------------ #
    # east-west avenues (one way per row, junctions as through nodes)
    # ------------------------------------------------------------------ #
    for r in range(rows):
        refs = street_refs([junction[(r, c)] for c in range(cols)])
        if r == 0:
            tags = {"highway": "primary", "maxspeed": "none", "name": "South Bypass"}
        elif r == rows - 1:
            tags = {"highway": "secondary", "maxspeed": "60", "name": "North Avenue"}
        elif r % 3 == 1:
            tags = {"highway": "residential", "maxspeed": "30", "name": f"Row {r} Street"}
        else:
            tags = {"highway": "residential", "name": f"Row {r} Street"}
        add_way(refs, tags)

    # ------------------------------------------------------------------ #
    # north-south streets, including the one-way pair
    # ------------------------------------------------------------------ #
    for c in range(cols):
        refs = street_refs([junction[(r, c)] for r in range(rows)])
        if c in (0, cols - 1):
            tags = {"highway": "secondary", "maxspeed": "60 km/h", "name": f"Ring {c}"}
        elif c == 1:
            tags = {"highway": "residential", "oneway": "yes", "name": "Uphill Lane"}
        elif c == cols - 2:
            tags = {"highway": "residential", "oneway": "-1", "name": "Downhill Lane"}
        elif c % 4 == 1:
            tags = {"highway": "residential", "maxspeed": "30 mph", "name": f"Col {c} Street"}
        else:
            tags = {"highway": "unclassified", "name": f"Col {c} Street"}
        add_way(refs, tags)

    # ------------------------------------------------------------------ #
    # footpath shortcuts across two central blocks
    # ------------------------------------------------------------------ #
    mid_r, mid_c = rows // 2, cols // 2
    for (a, b) in (
        ((mid_r - 1, mid_c - 1), (mid_r, mid_c)),
        ((mid_r, mid_c), (mid_r - 1, mid_c + 1)),
    ):
        refs = street_refs([junction[a], junction[b]])
        add_way(refs, {"highway": "footway", "name": "Park Path"})

    relation_members: List[int] = []
    if include_clutter:
        # Cul-de-sac stubs: below the default prune threshold.
        stub_id = 95_000
        for k in range(3):
            r = 1 + (k * 2) % (rows - 2)
            c = 1 + (k * 3) % (cols - 2)
            jx, jy = junction_xy[junction[(r, c)]]
            angle = rng.uniform(0.0, 2.0 * math.pi)
            stub_id += 1
            end = add_node(
                stub_id, jx + 25.0 * math.cos(angle), jy + 25.0 * math.sin(angle)
            )
            add_way([junction[(r, c)], end], {"highway": "service", "name": f"Yard {k}"})

        # A disconnected island far east of town: dropped by the
        # largest-component pass.
        east = (cols / 2.0 + 3.0) * spacing_m
        island = [
            add_node(90_001, east, 0.0),
            add_node(90_002, east + 150.0, 40.0),
            add_node(90_003, east + 70.0, 130.0),
        ]
        add_way(island + [island[0]], {"highway": "residential", "name": "Island Loop"})

        # Parser clutter: an unknown highway value, a tagless building, a
        # duplicated nd ref, a dangling ref, and a relation.
        add_way(
            [junction[(0, 0)], junction[(1, 1)]],
            {"highway": "proposed", "name": "Never Built"},
        )
        bx, by = junction_xy[junction[(0, 0)]]
        b1 = add_node(91_001, bx + 30.0, by + 30.0)
        b2 = add_node(91_002, bx + 45.0, by + 30.0)
        b3 = add_node(91_003, bx + 45.0, by + 45.0)
        add_way([b1, b2, b3, b1], {"building": "yes"})
        doubled = junction[(2, 0)]
        add_way(
            [junction[(1, 0)], doubled, doubled, 999_999_999],
            {"highway": "service", "name": "Glitch Alley"},
        )
        relation_members = [ways[0][0], ways[1][0]]

    return nodes, ways, relation_members


def _render_xml(
    nodes: List[_Node], ways: List[_Way], relation_members: List[int]
) -> str:
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<osm version="0.6" generator="repro-fixture">',
    ]
    lats = [lat for _, lat, _ in nodes]
    lons = [lon for _, _, lon in nodes]
    lines.append(
        f'  <bounds minlat="{min(lats)!r}" minlon="{min(lons)!r}" '
        f'maxlat="{max(lats)!r}" maxlon="{max(lons)!r}"/>'
    )
    for node_id, lat, lon in nodes:
        lines.append(f'  <node id="{node_id}" lat="{lat!r}" lon="{lon!r}"/>')
    for wid, refs, tags in ways:
        lines.append(f'  <way id="{wid}">')
        for ref in refs:
            lines.append(f'    <nd ref="{ref}"/>')
        for key, value in tags.items():
            lines.append(f'    <tag k="{key}" v="{value}"/>')
        lines.append("  </way>")
    if relation_members:
        lines.append('  <relation id="1">')
        for member in relation_members:
            lines.append(f'    <member type="way" ref="{member}" role=""/>')
        lines.append('    <tag k="type" v="route"/>')
        lines.append("  </relation>")
    lines.append("</osm>")
    return "\n".join(lines) + "\n"


def _render_json(nodes: List[_Node], ways: List[_Way]) -> str:
    import json

    elements: List[Dict[str, object]] = []
    for node_id, lat, lon in nodes:
        elements.append({"type": "node", "id": node_id, "lat": lat, "lon": lon})
    for wid, refs, tags in ways:
        elements.append({"type": "way", "id": wid, "nodes": refs, "tags": tags})
    return json.dumps({"version": 0.6, "generator": "repro-fixture", "elements": elements})


def synthetic_town_xml(
    seed: int = 0,
    rows: int = 6,
    cols: int = 6,
    spacing_m: float = 220.0,
    chain_step_m: float = 70.0,
    include_clutter: bool = True,
    origin: Tuple[float, float] = DEFAULT_ORIGIN,
) -> str:
    """A synthetic town as an OSM XML document (deterministic per seed)."""
    nodes, ways, relation_members = _town_elements(
        seed, rows, cols, spacing_m, chain_step_m, include_clutter, origin
    )
    return _render_xml(nodes, ways, relation_members)


def synthetic_town_json(
    seed: int = 0,
    rows: int = 6,
    cols: int = 6,
    spacing_m: float = 220.0,
    chain_step_m: float = 70.0,
    include_clutter: bool = True,
    origin: Tuple[float, float] = DEFAULT_ORIGIN,
) -> str:
    """The same town as an Overpass ``[out:json]`` document.

    Relations are omitted (Overpass road queries rarely return them), which
    is also why the XML/JSON equivalence test compares *networks*, not raw
    element counts.
    """
    nodes, ways, _ = _town_elements(
        seed, rows, cols, spacing_m, chain_step_m, include_clutter, origin
    )
    return _render_json(nodes, ways)


def write_fixture_xml(path, seed: int = 0, **params) -> None:
    """Write :func:`synthetic_town_xml` output to *path*."""
    from pathlib import Path

    Path(path).write_text(synthetic_town_xml(seed=seed, **params), encoding="utf-8")


#: Named fixtures usable as ``RealMapTopology(fixture=...)``; values are the
#: generator parameters (the topology's ``seed`` is passed at build time).
FIXTURES: Dict[str, Dict[str, object]] = {
    "town": {},
    "town_dense": {"rows": 8, "cols": 8, "spacing_m": 180.0, "chain_step_m": 45.0},
}


def build_fixture_xml(fixture: str, seed: int, overrides: Optional[Dict] = None) -> str:
    """Render a named fixture (used by ``RealMapTopology``)."""
    if fixture not in FIXTURES:
        raise ValueError(
            f"unknown fixture {fixture!r}; known fixtures: {sorted(FIXTURES)}"
        )
    params = dict(FIXTURES[fixture])
    if overrides:
        params.update(overrides)
    return synthetic_town_xml(seed=seed, **params)
