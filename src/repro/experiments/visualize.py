"""ASCII visualisation of routes, traces and update positions.

The paper's Figures 3 and 6 are screenshots of its simulator showing the
road, the driven route and the points at which the protocol transmitted an
update (9 updates for linear prediction, 3 for map-based DR on the same
stretch).  This module renders the same information as character graphics so
the benchmarks and examples can show it in a terminal: the route as dots,
the road network in the background, the start/end of the trip and the update
positions as numbered markers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.vec import Vec2, as_vec
from repro.roadmap.graph import RoadMap
from repro.traces.trace import Trace


@dataclass
class AsciiCanvas:
    """A fixed-size character grid with world-coordinate plotting."""

    bounds: BoundingBox
    width: int = 100
    height: int = 32

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("canvas must be at least 2x2 characters")
        if self.bounds.width <= 0 or self.bounds.height <= 0:
            # Degenerate extents (e.g. a perfectly horizontal trace) still
            # need a non-zero scale to be drawable.
            self.bounds = self.bounds.expanded(max(1.0, self.bounds.width, self.bounds.height))
        self._grid: List[List[str]] = [
            [" " for _ in range(self.width)] for _ in range(self.height)
        ]

    # ------------------------------------------------------------------ #
    # plotting primitives
    # ------------------------------------------------------------------ #
    def _to_cell(self, point: Vec2) -> Optional[tuple[int, int]]:
        p = as_vec(point)
        fx = (p[0] - self.bounds.min_x) / self.bounds.width
        fy = (p[1] - self.bounds.min_y) / self.bounds.height
        if not (0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0):
            return None
        col = min(self.width - 1, int(fx * (self.width - 1)))
        row = min(self.height - 1, int((1.0 - fy) * (self.height - 1)))
        return row, col

    def plot_point(self, point: Vec2, marker: str, overwrite: bool = True) -> None:
        """Plot a single character at a world coordinate (ignored if off-canvas)."""
        cell = self._to_cell(point)
        if cell is None:
            return
        row, col = cell
        if overwrite or self._grid[row][col] == " ":
            self._grid[row][col] = marker[0]

    def plot_polyline(self, points: Sequence[Vec2], marker: str, spacing: float = 0.0) -> None:
        """Plot a sequence of points, densified so lines appear connected."""
        pts = [as_vec(p) for p in points]
        if not pts:
            return
        step = spacing if spacing > 0 else max(self.bounds.width, self.bounds.height) / max(
            self.width, self.height
        )
        for a, b in zip(pts, pts[1:]):
            length = float(np.hypot(*(b - a)))
            n = max(1, int(length / step))
            for i in range(n + 1):
                self.plot_point(a + (b - a) * (i / n), marker, overwrite=False)

    def render(self) -> str:
        """The canvas as a newline-joined string with a simple frame."""
        top = "+" + "-" * self.width + "+"
        body = ["|" + "".join(row) + "|" for row in self._grid]
        return "\n".join([top, *body, top])


def render_route_updates(
    roadmap: Optional[RoadMap],
    trace: Trace,
    update_positions: Iterable[Vec2],
    width: int = 100,
    height: int = 32,
    margin: float = 100.0,
) -> str:
    """Render a trip and its update positions (the Fig. 3 / Fig. 6 view).

    Parameters
    ----------
    roadmap:
        Optional road network drawn in the background (links as ``-`` dots).
    trace:
        The driven trace, drawn as ``.`` with ``S``/``E`` marking start/end.
    update_positions:
        Positions at which the protocol transmitted an update; drawn as
        ``1``–``9`` then ``*`` so the count is readable straight off the art.
    width, height:
        Canvas size in characters.
    margin:
        Extra metres of world space drawn around the trace bounds.
    """
    bounds = BoundingBox(*trace.bounds()).expanded(margin)
    canvas = AsciiCanvas(bounds=bounds, width=width, height=height)

    if roadmap is not None:
        for link in roadmap.links_in_box(bounds):
            canvas.plot_polyline(list(link.geometry.points), "-")

    canvas.plot_polyline(list(trace.positions[:: max(1, len(trace) // 2000)]), ".")

    for index, position in enumerate(update_positions):
        marker = str(index + 1) if index < 9 else "*"
        canvas.plot_point(position, marker)

    canvas.plot_point(trace.positions[0], "S")
    canvas.plot_point(trace.positions[-1], "E")
    return canvas.render()


def render_update_summary(
    trace: Trace, update_positions: Sequence[Vec2], label: str
) -> str:
    """One-line textual summary to accompany :func:`render_route_updates`."""
    return (
        f"{label}: {len(update_positions)} updates over "
        f"{trace.path_length() / 1000.0:.1f} km "
        f"({trace.duration / 60.0:.0f} min)"
    )
