"""Wire protocol of the live serving tier.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Length-prefixing keeps the
reader trivial (no sniffing for delimiters inside string escapes) and
rejects oversized frames before buffering them.

The codecs here are the reason server answers can be asserted
**bit-identical** to direct facade calls: Python's ``json`` emits floats
via ``repr``, which round-trips every finite ``float`` exactly, and the
non-finite values the service legitimately produces (``Infinity`` for an
unbounded accuracy) are accepted by the parser — so an
:class:`~repro.protocols.base.UpdateMessage` or a query answer survives
the wire bit-for-bit.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason

#: Frames above this size are refused outright (a corrupt or hostile
#: length prefix must not make the reader allocate gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(ValueError):
    """A malformed or oversized frame."""


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, object]]:
    """Read one JSON frame; ``None`` on a clean EOF before a length prefix."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-frame") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} limit")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise FrameError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError("frame payload must be a JSON object")
    return payload


async def write_frame(writer: asyncio.StreamWriter, payload: Dict[str, object]) -> None:
    """Serialise *payload* and write it as one frame (drained)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} limit")
    writer.write(_LENGTH.pack(len(body)) + body)
    await writer.drain()


# --------------------------------------------------------------------------- #
# update-message codec
# --------------------------------------------------------------------------- #
def _vec(value) -> Optional[List[float]]:
    return None if value is None else [float(value[0]), float(value[1])]


def encode_state(state: ObjectState) -> Dict[str, object]:
    """JSON form of an :class:`ObjectState` (floats round-trip exactly)."""
    return {
        "time": state.time,
        "position": _vec(state.position),
        "velocity": _vec(state.velocity),
        "speed": state.speed,
        "link_id": state.link_id,
        "link_offset": state.link_offset,
        "uncertainty": state.uncertainty,
        "acceleration": _vec(state.acceleration),
    }


def decode_state(data: Dict[str, object]) -> ObjectState:
    """Inverse of :func:`encode_state`."""
    return ObjectState(
        time=float(data["time"]),
        position=np.asarray(data["position"], dtype=float),
        velocity=np.asarray(data["velocity"], dtype=float),
        speed=float(data["speed"]),
        link_id=None if data.get("link_id") is None else int(data["link_id"]),
        link_offset=(
            None if data.get("link_offset") is None else float(data["link_offset"])
        ),
        uncertainty=float(data.get("uncertainty", 0.0)),
        acceleration=(
            None
            if data.get("acceleration") is None
            else np.asarray(data["acceleration"], dtype=float)
        ),
    )


def encode_message(object_id: str, message: UpdateMessage) -> Dict[str, object]:
    """JSON form of one ``(object_id, UpdateMessage)`` ingest entry."""
    return {
        "id": object_id,
        "sequence": message.sequence,
        "reason": message.reason.value,
        "state": encode_state(message.state),
    }


def decode_message(data: Dict[str, object]) -> Tuple[str, UpdateMessage]:
    """Inverse of :func:`encode_message`."""
    return (
        str(data["id"]),
        UpdateMessage(
            sequence=int(data["sequence"]),
            state=decode_state(data["state"]),
            reason=UpdateReason(data["reason"]),
        ),
    )


# --------------------------------------------------------------------------- #
# query-answer codec
# --------------------------------------------------------------------------- #
def encode_answer(kind: str, answer) -> List[object]:
    """JSON form of a facade query answer.

    ``range`` answers are sorted id lists (strings pass through); the
    scored kinds (``nearest`` / ``geofence``) become ``[id, distance]``
    pairs.
    """
    if kind == "range":
        return list(answer)
    return [[object_id, float(dist)] for object_id, dist in answer]


def decode_answer(kind: str, payload: List[object]):
    """Inverse of :func:`encode_answer`, restoring the facade's return shape."""
    if kind == "range":
        return [str(object_id) for object_id in payload]
    return [(str(object_id), float(dist)) for object_id, dist in payload]
