"""A4 — Wolfson-style adaptive dead-reckoning strategies (paper Sec. 5).

The related-work section discusses the sdr/adr/dtdr policies of Wolfson et
al., which trade accuracy against update cost instead of guaranteeing a
fixed bound.  This benchmark compares them (plus higher-order prediction,
the other non-evaluated variant of Sec. 2) against plain linear-prediction
DR on the freeway scenario, reporting both update rate and the error
actually delivered.
"""

from repro.experiments.ablations import adaptive_strategy_comparison
from repro.experiments.report import format_table
from repro.mobility.scenarios import ScenarioName

from conftest import run_once


def test_adaptive_strategies(benchmark, scale):
    rows = run_once(
        benchmark,
        adaptive_strategy_comparison,
        scenario_name=ScenarioName.FREEWAY,
        threshold=100.0,
        scale=min(scale, 0.5),
    )
    print()
    print(format_table(rows, title="A4 — adaptive dead-reckoning strategies (freeway, th=100 m)"))
    rates = {row["strategy"]: row["updates_per_hour"] for row in rows}
    errors = {row["strategy"]: row["mean_error_m"] for row in rows}
    # sdr is linear DR under another name: identical update rates.
    assert rates["sdr"] == rates["linear dr"]
    # dtdr shrinks its threshold while silent, so it can only send more
    # updates (and deliver a smaller mean error) than the fixed threshold.
    assert rates["dtdr"] >= rates["sdr"]
    assert errors["dtdr"] <= errors["sdr"] + 1e-9
