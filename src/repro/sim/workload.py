"""Query workloads replayed against the location service mid-simulation.

The paper evaluates the *update* side of the location service; this module
exercises the *query* side: a :class:`QueryWorkload` describes a
deterministic stream of application queries (a range / k-nearest / geofence
mix), and :class:`WorkloadExecutor` replays it against the fleet's server
backend at every simulation tick — the way a live service answers "find the
nearest taxi" requests while updates keep streaming in.

The workload is read-only with respect to the simulation: queries never
change server records, so a fleet run with a workload attached produces
bit-identical :class:`~repro.sim.metrics.SimulationResult`\\ s to the same
run without one (asserted by the test-suite).  The executor works against
both backends — the sharded :class:`~repro.service.facade.LocationService`
(index-backed) and a plain
:class:`~repro.service.server.LocationServer` (linear scans via
:mod:`repro.service.queries`) — drawing the identical query stream either
way, which is what makes backend comparisons and the query benchmark fair.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.geo.bbox import BoundingBox
from repro.service.queries import geofence_query, nearest_object_query, range_query

#: The query kinds a workload can mix.
QUERY_KINDS = ("range", "nearest", "geofence")


@dataclass(frozen=True)
class QueryCall:
    """One fully drawn application query: arrival instant, kind and centre.

    The workload's remaining parameters (box extent, ``k``, geofence
    radius, margin) are properties of the :class:`QueryWorkload`, so a
    ``(workload, call)`` pair determines the query completely —
    :func:`execute_call` turns it into a backend answer.  Materialising
    calls (instead of drawing them inside an executor) is what lets the
    live-serving load generator and the event kernel issue bit-identical
    query streams.
    """

    time: float
    kind: str
    cx: float
    cy: float


def _draw_call(rng: random.Random, weights: List[float], area: BoundingBox,
               time: float) -> QueryCall:
    """Draw one query's kind and centre (the canonical draw order).

    Every consumer of a workload's RNG stream — the per-tick executor, the
    kernel's Poisson arrivals, :func:`poisson_query_stream` — draws through
    this helper, so the streams stay aligned by construction.
    """
    kind = rng.choices(QUERY_KINDS, weights=weights)[0]
    cx = rng.uniform(area.min_x, area.max_x)
    cy = rng.uniform(area.min_y, area.max_y)
    return QueryCall(time=time, kind=kind, cx=cx, cy=cy)


def execute_call(backend, workload: "QueryWorkload", call: QueryCall):
    """Answer *call* against *backend* (service surface or linear scans).

    Dispatches exactly like :class:`WorkloadExecutor`: backends exposing
    the indexed query surface (``nearest_objects``) are queried through it,
    anything else through the reference scans of
    :mod:`repro.service.queries`.  Returns the query's answer unchanged, so
    equality of answers is equality of backend behaviour.
    """
    service = hasattr(backend, "nearest_objects")
    if call.kind == "range":
        half = workload.range_extent_m / 2.0
        box = BoundingBox(call.cx - half, call.cy - half, call.cx + half, call.cy + half)
        if service:
            return backend.range_query(box, call.time, margin=workload.margin)
        return range_query(backend, box, call.time, margin=workload.margin)
    if call.kind == "nearest":
        if service:
            return backend.nearest_objects((call.cx, call.cy), call.time, k=workload.k)
        return nearest_object_query(backend, (call.cx, call.cy), call.time, k=workload.k)
    radius = workload.geofence_radius_m
    if service:
        return backend.geofence_query((call.cx, call.cy), radius, call.time)
    return geofence_query(backend, (call.cx, call.cy), radius, call.time)


def poisson_query_stream(
    workload: "QueryWorkload", area: BoundingBox, start: float, end: float
) -> List[QueryCall]:
    """Materialise the workload's seeded Poisson query stream over [start, end].

    Reproduces the event kernel's draw order exactly — one exponential
    arrival gap, then the query's kind/centre draws, repeated until the
    next arrival falls past *end* — so replaying the returned calls against
    a backend issues the same queries, in the same order, at the same
    simulated instants as ``FleetSimulation(kernel="event")`` with this
    workload attached.  This is the serving tier's arrival process: the
    load generator replays these calls against the live server on the wall
    clock.
    """
    rate = workload.arrival_rate_per_s
    if rate is None:
        raise ValueError("workload has no Poisson arrival rate configured")
    rng = random.Random(workload.seed)
    weights = [float(workload.mix.get(kind, 0.0)) for kind in QUERY_KINDS]
    calls: List[QueryCall] = []
    t = start + rng.expovariate(rate)
    while t <= end:
        calls.append(_draw_call(rng, weights, area, t))
        t += rng.expovariate(rate)
    return calls


@dataclass(frozen=True)
class QueryWorkload:
    """A deterministic application-query stream.

    Parameters
    ----------
    queries_per_tick:
        Mean number of queries issued per simulation tick; fractional rates
        are honoured exactly over time via an accumulator (e.g. ``0.25``
        issues one query every fourth tick).
    mix:
        Relative weights of the query kinds (``range`` / ``nearest`` /
        ``geofence``).  Weights need not sum to one.
    k:
        Result size for k-nearest queries.
    range_extent_m:
        Edge length of range-query boxes in metres.
    geofence_radius_m:
        Radius of geofence queries in metres.
    margin:
        Accuracy margin forwarded to range queries.
    seed:
        Seed of the query stream (centres, kinds, interleaving).
    arrival_rate_per_s:
        When set, queries arrive as a **Poisson process** at this mean rate
        (queries per simulated second) instead of per tick — the natural
        model for independent application requests hitting a live service.
        Poisson arrivals are scheduled as exact-instant events, so they
        require the event kernel (``queries_per_tick`` is ignored then);
        the tick loop rejects such a workload.
    """

    queries_per_tick: float = 1.0
    mix: Mapping[str, float] = field(
        default_factory=lambda: {"range": 1.0, "nearest": 1.0, "geofence": 1.0}
    )
    k: int = 3
    range_extent_m: float = 1000.0
    geofence_radius_m: float = 500.0
    margin: float = 0.0
    seed: int = 0
    arrival_rate_per_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.queries_per_tick < 0:
            raise ValueError("queries_per_tick must be non-negative")
        if self.arrival_rate_per_s is not None and self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        unknown = set(self.mix) - set(QUERY_KINDS)
        if unknown:
            raise ValueError(f"unknown query kinds in mix: {sorted(unknown)}")
        weights = [float(self.mix.get(kind, 0.0)) for kind in QUERY_KINDS]
        if any(w < 0 for w in weights):
            raise ValueError("mix weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("mix needs at least one positive weight")
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.range_extent_m <= 0 or self.geofence_radius_m <= 0:
            raise ValueError("query extents must be positive")

    @classmethod
    def parse_mix(cls, text: str) -> Dict[str, float]:
        """Parse the CLI mix format ``range=2,nearest=1,geofence=0.5``."""
        mix: Dict[str, float] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"expected kind=weight, got {part!r}")
            kind, _, weight = part.partition("=")
            mix[kind.strip()] = float(weight)
        if not mix:
            raise ValueError("empty query mix")
        return mix


@dataclass
class WorkloadReport:
    """Outcome of replaying a query workload over one simulation."""

    ticks: int = 0
    queries: int = 0
    hits: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    hits_by_kind: Dict[str, int] = field(default_factory=dict)
    query_seconds: float = 0.0

    @property
    def queries_per_second(self) -> float:
        """Observed query throughput (wall-clock)."""
        return self.queries / self.query_seconds if self.query_seconds > 0 else 0.0

    @property
    def mean_query_seconds(self) -> float:
        """Mean wall-clock latency of one query."""
        return self.query_seconds / self.queries if self.queries else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for reports and artifacts."""
        out: Dict[str, object] = {
            "ticks": self.ticks,
            "queries": self.queries,
            "hits": self.hits,
            "query_seconds": round(self.query_seconds, 6),
            "mean_query_us": round(self.mean_query_seconds * 1e6, 3),
            "queries_per_second": round(self.queries_per_second, 1),
        }
        for kind in QUERY_KINDS:
            out[f"{kind}_queries"] = self.by_kind.get(kind, 0)
        return out


class WorkloadExecutor:
    """Replays a :class:`QueryWorkload` against one server backend.

    Parameters
    ----------
    workload:
        The query stream description.
    backend:
        A :class:`LocationService` (index-backed queries) or any object with
        the :class:`~repro.service.server.LocationServer` query surface
        (answered through the linear reference scans).
    area:
        Bounding box the query centres are drawn from — typically the
        bounding box of the fleet's traces.
    record_answers:
        When set, every query's answer is kept on :attr:`answers` (used by
        equivalence tests and the benchmark; off by default to stay O(1) in
        memory).
    """

    def __init__(
        self,
        workload: QueryWorkload,
        backend,
        area: BoundingBox,
        record_answers: bool = False,
    ):
        self.workload = workload
        self.backend = backend
        self.area = area
        self.report = WorkloadReport()
        self.record_answers = record_answers
        self.answers: List[Tuple[float, str, object]] = []
        self._rng = random.Random(workload.seed)
        self._credit = 0.0
        self._weights = [float(workload.mix.get(kind, 0.0)) for kind in QUERY_KINDS]

    def on_tick(self, time: float) -> None:
        """Issue this tick's queries at simulation time *time*."""
        self.report.ticks += 1
        self._credit += self.workload.queries_per_tick
        n = int(self._credit)
        if n <= 0:
            return
        self._credit -= n
        for _ in range(n):
            self._one_query(time)

    # ------------------------------------------------------------------ #
    # Poisson arrivals (event kernel)
    # ------------------------------------------------------------------ #
    @property
    def poisson_rate(self) -> Optional[float]:
        """Arrival rate in queries per simulated second (``None`` = per-tick)."""
        return self.workload.arrival_rate_per_s

    def next_arrival(self, after: float) -> float:
        """The next Poisson arrival instant strictly after *after*.

        Inter-arrival gaps are exponential draws from the workload's seeded
        stream, so the arrival pattern is deterministic per seed.
        """
        rate = self.workload.arrival_rate_per_s
        if rate is None:
            raise ValueError("workload has no Poisson arrival rate configured")
        return after + self._rng.expovariate(rate)

    def note_tick(self) -> None:
        """Record a simulated sample instant without issuing queries.

        The Poisson-arrival path's counterpart of :meth:`on_tick`: queries
        arrive independently of the sampling grid there, but the report's
        ``ticks`` counter should still say how many instants the simulation
        stepped through rather than a misleading ``0``.
        """
        self.report.ticks += 1

    def run_query(self, time: float) -> None:
        """Issue one query at exactly *time* (a kernel query-arrival event)."""
        self._one_query(time)

    def issue_wave(self, time: float, n: int) -> None:
        """Issue *n* queries at one instant as a coalesced wave.

        The workload model of the live server's query batching: every query
        in the wave shares the same timestamp (one facade ``prepare`` for
        the whole group) and is answered back to back, with one wall-clock
        measurement spanning the wave instead of a timer pair per query.
        Calls are drawn up front in the canonical order, so the answers are
        identical to *n* sequential :meth:`run_query` calls at *time*.
        """
        if n <= 0:
            return
        calls = [_draw_call(self._rng, self._weights, self.area, time) for _ in range(n)]
        started = _time.perf_counter()
        answers = [execute_call(self.backend, self.workload, call) for call in calls]
        self.report.query_seconds += _time.perf_counter() - started
        for call, answer in zip(calls, answers):
            self._record(time, call, answer)

    def _one_query(self, time: float) -> None:
        call = _draw_call(self._rng, self._weights, self.area, time)
        started = _time.perf_counter()
        answer = execute_call(self.backend, self.workload, call)
        self.report.query_seconds += _time.perf_counter() - started
        self._record(time, call, answer)

    def _record(self, time: float, call: QueryCall, answer) -> None:
        self.report.queries += 1
        self.report.hits += len(answer)
        self.report.by_kind[call.kind] = self.report.by_kind.get(call.kind, 0) + 1
        self.report.hits_by_kind[call.kind] = (
            self.report.hits_by_kind.get(call.kind, 0) + len(answer)
        )
        if self.record_answers:
            self.answers.append((time, call.kind, answer))


def default_query_mix(scenario_name: Optional[str]) -> Dict[str, float]:
    """A plausible query mix for a library scenario.

    Pedestrian scenarios skew towards geofences ("address all users inside
    the store"), dense city driving towards nearest-taxi queries, corridor /
    freeway scenarios towards range queries over road stretches.  Unknown
    names get the balanced default.
    """
    from repro.experiments.library import get_entry  # runtime: library sits above sim

    balanced = {"range": 1.0, "nearest": 1.0, "geofence": 1.0}
    if scenario_name is None:
        return balanced
    try:
        entry = get_entry(scenario_name)
    except ValueError:
        return balanced
    if entry.query_mix:
        return dict(entry.query_mix)
    knobs = dict(entry.knobs)
    topology = str(knobs.get("topology", ""))
    if topology == "footpath":
        return {"range": 0.5, "nearest": 1.0, "geofence": 2.5}
    if topology in ("grid", "radial"):
        return {"range": 1.0, "nearest": 2.5, "geofence": 0.5}
    if topology in ("corridor", "interurban", "mixed"):
        return {"range": 2.5, "nearest": 1.0, "geofence": 0.5}
    return balanced


def default_query_rate(scenario_name: Optional[str]) -> Optional[float]:
    """The scenario's default Poisson query-arrival rate, if it has one.

    Library entries can declare ``query_rate_per_s`` (e.g. the
    ``poisson_queries_freeway`` scenario); everything else returns ``None``
    and keeps the per-tick workload model.
    """
    from repro.experiments.library import get_entry  # runtime: library sits above sim

    if scenario_name is None:
        return None
    try:
        entry = get_entry(scenario_name)
    except ValueError:
        return None
    return entry.query_rate_per_s
