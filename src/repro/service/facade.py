"""The sharded location-service tier.

:class:`LocationService` is the serving-layer facade: it partitions tracked
objects across N :class:`~repro.service.server.LocationServer` shards by
spatial region (pluggable :class:`~repro.service.sharding.ShardingPolicy`,
grid-hash by default), ingests update batches per simulation tick, hands
objects off between shards when their predicted position crosses a shard
boundary, and answers application queries through one columnar
:class:`~repro.service.query_engine.QueryEngine` per shard — vectorised
NumPy kernels over contiguous per-shard columns instead of per-object
Python loops (``engine="scalar"`` selects the PR 3 incremental grid-index
engine, kept as the bit-identical reference).

The facade implements the full :class:`LocationServer` surface
(``register_object`` / ``receive_update`` / ``predict_position`` /
``predict_positions`` / …), which makes it a drop-in server backend for
:class:`~repro.sim.fleet.FleetSimulation`; with ``n_shards=1`` every result
is bit-identical to the plain single server (asserted by the test-suite
over the whole scenario library).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.vec import Vec2, as_vec
from repro.protocols.base import ObjectState, UpdateMessage
from repro.protocols.prediction import PredictionFunction
from repro.service.query_engine import ENGINE_KINDS, QueryEngine
from repro.service.server import LocationServer, TrackedObject
from repro.service.sharding import GridHashPolicy, ShardingPolicy


@dataclass(slots=True)
class ShardLoad:
    """Per-shard load counters maintained by the facade."""

    shard_id: int
    updates: int = 0
    handoffs_in: int = 0
    handoffs_out: int = 0
    engine_queries: int = 0

    def as_dict(self, shard: LocationServer, engine: QueryEngine) -> Dict[str, object]:
        """One flat row for reports and artifacts."""
        return {
            "shard": self.shard_id,
            "objects": len(shard.object_ids()),
            "updates": self.updates,
            "handoffs_in": self.handoffs_in,
            "handoffs_out": self.handoffs_out,
            "engine_queries": self.engine_queries,
            "engine_syncs": engine.syncs,
            "engine_moves": engine.moves,
        }


@dataclass(slots=True)
class QueryCounters:
    """Service-level query statistics (counts and wall-clock latency)."""

    range_queries: int = 0
    nearest_queries: int = 0
    geofence_queries: int = 0
    query_seconds: float = 0.0
    batches_ingested: int = 0
    syncs: int = 0

    @property
    def total_queries(self) -> int:
        return self.range_queries + self.nearest_queries + self.geofence_queries

    def mean_query_seconds(self) -> float:
        total = self.total_queries
        return self.query_seconds / total if total else 0.0


class LocationService:
    """Facade over N spatially sharded location servers plus query engines.

    Parameters
    ----------
    n_shards:
        Number of :class:`LocationServer` shards.
    policy:
        Sharding policy; defaults to :class:`GridHashPolicy` over
        ``region_size``-metre routing cells.
    region_size:
        Routing cell size of the default policy (ignored when *policy* is
        given).
    engine_cell_size:
        Cell size of each shard's query engine.
    engine:
        Query-engine kind: ``"columnar"`` (default; vectorised NumPy
        kernels) or ``"scalar"`` (PR 3's incremental grid index, the
        bit-identical reference implementation).
    """

    def __init__(
        self,
        n_shards: int = 1,
        policy: Optional[ShardingPolicy] = None,
        region_size: float = 2000.0,
        engine_cell_size: float = 500.0,
        engine: str = "columnar",
    ):
        if policy is None:
            policy = GridHashPolicy(n_shards, region_size=region_size)
        elif policy.n_shards != n_shards:
            raise ValueError(
                f"policy is for {policy.n_shards} shards, service has {n_shards}"
            )
        if engine not in ENGINE_KINDS:
            raise ValueError(
                f"unknown engine {engine!r} (expected one of {sorted(ENGINE_KINDS)})"
            )
        self.engine_kind = engine
        engine_cls = ENGINE_KINDS[engine]
        self.policy = policy
        self.shards: List[LocationServer] = [LocationServer() for _ in range(n_shards)]
        self.engines: List[QueryEngine] = [
            engine_cls(cell_size=engine_cell_size) for _ in range(n_shards)
        ]
        self.loads: List[ShardLoad] = [ShardLoad(shard_id=s) for s in range(n_shards)]
        self.counters = QueryCounters()
        #: Optional :class:`~repro.obs.Observability`.  When attached (by
        #: the caller, or inherited from a ``FleetSimulation`` run) the
        #: facade records per-query-class latencies, ingest batch sizes and
        #: rebalance timings; the per-shard load counters themselves reach
        #: the registry through ``publish_service_stats`` at the end of a
        #: run.  ``None`` (the default) records nothing.
        self.obs = None
        self._records: Dict[str, TrackedObject] = {}
        self._home: Dict[str, int] = {}
        self._prepared_time: Optional[float] = None
        self._dirty = True
        # Largest finite accuracy over all registered objects: the exact,
        # conservative probe-box expansion for margin range queries.
        self._max_finite_accuracy: float = 0.0

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def __getstate__(self) -> Dict[str, object]:
        # Observability never crosses process boundaries: a worker replica
        # builds its own bundle, and pickling the parent's would duplicate
        # whatever it already recorded.
        state = self.__dict__.copy()
        state["obs"] = None
        return state

    # ------------------------------------------------------------------ #
    # LocationServer-compatible surface
    # ------------------------------------------------------------------ #
    def register_object(
        self,
        object_id: str,
        prediction: Optional[PredictionFunction] = None,
        accuracy: float = float("inf"),
    ) -> TrackedObject:
        """Register a mobile object (same contract as the single server).

        Objects that have not reported yet have no position, so they start
        on a stable id-hashed shard and are handed to their spatial home
        with the first update.
        """
        if object_id in self._records:
            raise ValueError(f"object {object_id!r} already registered")
        home = self.policy.shard_for_id(object_id)
        record = self.shards[home].register_object(
            object_id, prediction=prediction, accuracy=accuracy
        )
        self._records[object_id] = record
        self._home[object_id] = home
        if record.accuracy != float("inf"):
            self._max_finite_accuracy = max(self._max_finite_accuracy, record.accuracy)
        self._dirty = True
        return record

    def is_registered(self, object_id: str) -> bool:
        """Whether *object_id* is known to the service."""
        return object_id in self._records

    def tracked_object(self, object_id: str) -> TrackedObject:
        """The record for *object_id* (raises ``KeyError`` when unknown)."""
        return self._records[object_id]

    def object_ids(self) -> List[str]:
        """All registered object ids, in registration order."""
        return list(self._records)

    def home_shard(self, object_id: str) -> int:
        """The shard currently responsible for *object_id*."""
        return self._home[object_id]

    def predict_position(self, object_id: str, time: float) -> Optional[np.ndarray]:
        """The position the service assumes for *object_id* at *time*."""
        return self._records[object_id].predict(time)

    def predict_positions(
        self, object_ids: Sequence[str], time: float
    ) -> List[Optional[np.ndarray]]:
        """Batch position predictions (the fleet loop's per-tick entry point)."""
        records = self._records
        return [records[object_id].predict(time) for object_id in object_ids]

    def last_reported_state(self, object_id: str) -> Optional[ObjectState]:
        """The last update received for *object_id* (or ``None``)."""
        return self._records[object_id].state

    def all_positions(self, time: float) -> Dict[str, np.ndarray]:
        """Predicted positions of every object that has reported at least once."""
        out: Dict[str, np.ndarray] = {}
        for object_id, record in self._records.items():
            predicted = record.predict(time)
            if predicted is not None:
                out[object_id] = predicted
        return out

    # ------------------------------------------------------------------ #
    # ingestion and handoff
    # ------------------------------------------------------------------ #
    def receive_update(self, object_id: str, message: UpdateMessage, time: float) -> None:
        """Apply one update message (per-message ingestion path)."""
        home = self._home[object_id]
        self.shards[home].receive_update(object_id, message, time)
        self.loads[home].updates += 1
        self._dirty = True
        self._rehome(object_id, time)

    def ingest_batch(
        self, messages: Sequence[Tuple[str, UpdateMessage]], time: float
    ) -> None:
        """Apply one tick's worth of delivered updates, then re-home.

        All updates are applied first and handoffs run once per touched
        object afterwards; because a handoff moves the record wholesale
        (state, counters, timestamps untouched), the resulting service
        *state* — records, predictions, homes — is identical to the
        per-message path.  Load counters may attribute differently in the
        rare case of several messages for one object in a single batch:
        the per-message path re-homes between them, the batch path counts
        them all on the pre-batch shard.
        """
        if not messages:
            return
        for object_id, message in messages:
            home = self._home[object_id]
            self.shards[home].receive_update(object_id, message, time)
            self.loads[home].updates += 1
        self._dirty = True
        self.counters.batches_ingested += 1
        if self.obs is not None:
            self.obs.histogram(
                "service.ingest.batch_size",
                bounds=(1, 2, 4, 8, 16, 32, 64, 128, 256, 1024),
            ).observe(len(messages))
        for object_id in dict.fromkeys(object_id for object_id, _ in messages):
            self._rehome(object_id, time)

    def _rehome(self, object_id: str, time: float) -> None:
        """Move *object_id* to the shard owning its predicted position."""
        record = self._records[object_id]
        predicted = record.predict(time)
        if predicted is None:
            return
        target = self.policy.shard_for_point(predicted)
        home = self._home[object_id]
        if target == home:
            return
        self.shards[target].adopt(self.shards[home].remove_object(object_id))
        self._home[object_id] = target
        self.loads[home].handoffs_out += 1
        self.loads[target].handoffs_in += 1
        self._dirty = True

    def rebalance(self, time: float) -> int:
        """Hand off every object whose prediction drifted across a boundary.

        Pure placement maintenance for the event kernel's periodic
        ``HANDOFF`` events: between updates an object's *predicted*
        position keeps moving, so a long-silent object can drift out of its
        home shard's region; this sweeps every record to its spatial home
        at *time*.  Unlike :meth:`prepare` it does not touch the query
        engines.  Returns the number of handoffs performed.  Handoffs move
        records wholesale, so query answers and simulation results are
        unaffected — only the per-shard placement counters change.
        """
        if self.n_shards <= 1:
            return 0
        started = _time.perf_counter()
        before = sum(load.handoffs_in for load in self.loads)
        for object_id in list(self._records):
            self._rehome(object_id, time)
        moved = sum(load.handoffs_in for load in self.loads) - before
        if self.obs is not None:
            self.obs.latency("service.rebalance.seconds").record(
                _time.perf_counter() - started
            )
        return moved

    # ------------------------------------------------------------------ #
    # query engine maintenance
    # ------------------------------------------------------------------ #
    def prepare(self, time: float) -> None:
        """Bring every shard's query index up to date for queries at *time*.

        One pass computes the predicted positions per shard, hands off
        objects whose prediction drifted across a shard boundary since their
        last update, and incrementally syncs each shard's engine.  Repeated
        queries at the same *time* hit the prepared indexes directly — this
        is what makes a query wave O(results) instead of O(fleet) each.
        """
        if not self._dirty and self._prepared_time == time:
            return
        per_shard: List[Dict[str, np.ndarray]] = [
            shard.all_positions(time) for shard in self.shards
        ]
        if self.n_shards > 1:
            for source, positions in enumerate(per_shard):
                for object_id in [
                    oid
                    for oid, p in positions.items()
                    if self.policy.shard_for_point(p) != source
                ]:
                    self._rehome(object_id, time)
                    target = self._home[object_id]
                    if target != source:
                        per_shard[target][object_id] = positions.pop(object_id)
        for engine, positions in zip(self.engines, per_shard):
            engine.sync(positions, time)
        self.counters.syncs += 1
        self._prepared_time = float(time)
        self._dirty = False

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def range_query(
        self, area: BoundingBox, time: float, margin: float = 0.0
    ) -> List[str]:
        """All objects predicted inside *area* at *time* (sorted ids).

        Mirrors :func:`repro.service.queries.range_query` exactly, including
        the per-object accuracy expansion when ``margin > 0``.
        """
        started = _time.perf_counter()
        self.prepare(time)
        expand = margin > 0.0 and self._max_finite_accuracy > 0.0
        probe = area.expanded(margin * self._max_finite_accuracy) if expand else area
        hits: List[str] = []
        for shard_id in self.policy.shards_for_box(probe):
            engine = self.engines[shard_id]
            self.loads[shard_id].engine_queries += 1
            if not expand:
                # Exact hits, unsorted: one vectorised mask per shard and
                # one final sort over the union (a per-shard sort order
                # would be discarded by the merge anyway).
                hits.extend(engine.ids_in_box(area))
                continue
            for object_id in engine.candidates_in_box(probe):
                record = self._records[object_id]
                effective = area
                if record.accuracy != float("inf"):
                    effective = area.expanded(margin * record.accuracy)
                if effective.contains_point(engine.position_of(object_id)):
                    hits.append(object_id)
        self.counters.range_queries += 1
        elapsed = _time.perf_counter() - started
        self.counters.query_seconds += elapsed
        if self.obs is not None:
            self.obs.latency("service.query.range").record(elapsed)
        return sorted(hits)

    def nearest_objects(
        self, point: Vec2, time: float, k: int = 1
    ) -> List[Tuple[str, float]]:
        """The *k* objects closest to *point* at *time*.

        Returns ``(object_id, distance)`` pairs sorted by
        ``(distance, object_id)`` — identical to
        :func:`repro.service.queries.nearest_object_query`.

        Each shard answers its own exact top-k with one vectorised
        ``argpartition`` kernel, and the facade merges the per-shard
        answers by ``(distance, object_id)``: the global top-k is always
        contained in the union of per-shard top-k lists.
        """
        started = _time.perf_counter()
        self.prepare(time)
        answer = self._k_nearest_merged(as_vec(point), k)
        self.counters.nearest_queries += 1
        elapsed = _time.perf_counter() - started
        self.counters.query_seconds += elapsed
        if self.obs is not None:
            self.obs.latency("service.query.nearest").record(elapsed)
        return answer

    def _k_nearest_merged(self, p: np.ndarray, k: int) -> List[Tuple[str, float]]:
        if k <= 0:
            return []
        pairs: List[Tuple[str, float]] = []
        for shard_id, engine in enumerate(self.engines):
            if not len(engine):
                continue
            self.loads[shard_id].engine_queries += 1
            pairs.extend(engine.k_nearest(p, k))
        pairs.sort(key=lambda pair: (pair[1], pair[0]))
        return pairs[:k]

    def geofence_query(
        self, point: Vec2, radius: float, time: float
    ) -> List[Tuple[str, float]]:
        """Objects within *radius* metres of *point* at *time*.

        Returns ``(object_id, distance)`` pairs sorted by
        ``(distance, object_id)``.
        """
        started = _time.perf_counter()
        self.prepare(time)
        p = as_vec(point)
        merged: List[Tuple[str, float]] = []
        if radius >= 0:
            box = BoundingBox.around(p, radius)
            for shard_id in self.policy.shards_for_box(box):
                self.loads[shard_id].engine_queries += 1
                merged.extend(self.engines[shard_id].within_radius(p, radius))
        merged.sort(key=lambda pair: (pair[1], pair[0]))
        self.counters.geofence_queries += 1
        elapsed = _time.perf_counter() - started
        self.counters.query_seconds += elapsed
        if self.obs is not None:
            self.obs.latency("service.query.geofence").record(elapsed)
        return merged

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def shard_rows(self) -> List[Dict[str, object]]:
        """One flat counter row per shard (reports / artifacts)."""
        return [
            load.as_dict(shard, engine)
            for load, shard, engine in zip(self.loads, self.shards, self.engines)
        ]

    def service_stats(self) -> Dict[str, object]:
        """Aggregate service statistics plus the per-shard rows."""
        rows = self.shard_rows()
        objects = [int(row["objects"]) for row in rows]
        mean_objects = sum(objects) / len(objects) if objects else 0.0
        return {
            "shards": self.n_shards,
            "objects": len(self._records),
            "updates_ingested": sum(load.updates for load in self.loads),
            "batches_ingested": self.counters.batches_ingested,
            "handoffs": sum(load.handoffs_in for load in self.loads),
            "prepare_passes": self.counters.syncs,
            "range_queries": self.counters.range_queries,
            "nearest_queries": self.counters.nearest_queries,
            "geofence_queries": self.counters.geofence_queries,
            "queries": self.counters.total_queries,
            "query_seconds": self.counters.query_seconds,
            "mean_query_seconds": self.counters.mean_query_seconds(),
            "load_imbalance": (max(objects) / mean_objects) if mean_objects else 0.0,
            "per_shard": rows,
        }
