"""Angle and bearing utilities.

Two angle conventions appear in the code base:

* *mathematical angles* measured counter-clockwise from the positive x axis
  (east), in radians, used internally for vector math, and
* *compass bearings* measured clockwise from north, in radians, which is the
  convention used by GPS receivers and by the paper's description of the
  object state (``o.dir``).

The helpers here convert between the two and provide the angular-difference
primitives needed by the map-based protocol's "smallest angle to the previous
link" turn policy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geo.vec import Vec2, as_vec

TWO_PI = 2.0 * math.pi


def normalize_angle(angle: float) -> float:
    """Normalise an angle to the half-open interval ``(-pi, pi]``."""
    a = math.fmod(angle, TWO_PI)
    if a <= -math.pi:
        a += TWO_PI
    elif a > math.pi:
        a -= TWO_PI
    return a


def normalize_bearing(bearing_rad: float) -> float:
    """Normalise a compass bearing to ``[0, 2*pi)``."""
    b = math.fmod(bearing_rad, TWO_PI)
    if b < 0.0:
        b += TWO_PI
    return b


def angle_difference(a: float, b: float) -> float:
    """Smallest absolute difference between two angles, in ``[0, pi]``.

    Works for both mathematical angles and compass bearings because the
    difference is invariant under the choice of reference direction.
    """
    return abs(normalize_angle(a - b))


def bearing(origin: Vec2, target: Vec2) -> float:
    """Compass bearing (radians clockwise from north) from *origin* to *target*."""
    o = as_vec(origin)
    t = as_vec(target)
    dx = t[0] - o[0]
    dy = t[1] - o[1]
    return normalize_bearing(math.atan2(dx, dy))


def bearing_to_unit(bearing_rad: float) -> np.ndarray:
    """Unit direction vector (east, north) for a compass bearing."""
    return np.array([math.sin(bearing_rad), math.cos(bearing_rad)])


def unit_to_bearing(direction: Vec2) -> float:
    """Compass bearing of a direction vector; 0 for the zero vector."""
    d = as_vec(direction)
    if d[0] == 0.0 and d[1] == 0.0:
        return 0.0
    return normalize_bearing(math.atan2(d[0], d[1]))


def angle_between(u: Vec2, v: Vec2) -> float:
    """Unsigned angle between two vectors, in ``[0, pi]``.

    Returns 0 if either vector has zero length, which matches the behaviour
    the map-based predictor needs when the object is momentarily stationary.
    """
    uv = as_vec(u)
    vv = as_vec(v)
    nu = math.hypot(uv[0], uv[1])
    nv = math.hypot(vv[0], vv[1])
    if nu == 0.0 or nv == 0.0:
        return 0.0
    # Normalise each vector separately: multiplying the two norms first can
    # underflow to zero for very small (subnormal) inputs.
    cosine = (uv[0] / nu) * (vv[0] / nv) + (uv[1] / nu) * (vv[1] / nv)
    cosine = min(1.0, max(-1.0, cosine))
    return math.acos(cosine)
