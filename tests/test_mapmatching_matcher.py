"""Unit tests for repro.mapmatching.matcher."""

import numpy as np
import pytest

from repro.mapmatching.matcher import (
    IncrementalMapMatcher,
    MatcherConfig,
    MatchStatus,
)


class TestMatcherConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MatcherConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            MatcherConfig(end_proximity=-1.0)
        with pytest.raises(ValueError):
            MatcherConfig(backtrack_depth=0)
        with pytest.raises(ValueError):
            MatcherConfig(reacquire_interval=0)


class TestAcquisition:
    def test_initial_match_on_nearest_link(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        result = matcher.update((250.0, 10.0))
        assert result.status is MatchStatus.NEW_LINK
        assert result.is_matched
        assert result.distance == pytest.approx(10.0)
        # The corrected position lies on the road (y == 0).
        assert result.position[1] == pytest.approx(0.0)

    def test_no_link_within_tolerance(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        result = matcher.update((250.0, 500.0))
        assert result.status is MatchStatus.OFF_MAP
        assert not result.is_matched
        assert result.link_id is None

    def test_heading_selects_correct_carriageway(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        eastbound = matcher.update((250.0, 2.0), heading=(1.0, 0.0))
        link = straight_map.link(eastbound.link_id)
        assert link.direction_at(eastbound.offset)[0] > 0
        matcher.reset()
        westbound = matcher.update((250.0, 2.0), heading=(-1.0, 0.0))
        link = straight_map.link(westbound.link_id)
        assert link.direction_at(westbound.offset)[0] < 0

    def test_reacquisition_interval(self, straight_map):
        config = MatcherConfig(tolerance=30.0, reacquire_interval=3)
        matcher = IncrementalMapMatcher(straight_map, config)
        far = (0.0, 10_000.0)
        assert matcher.update(far).status is MatchStatus.OFF_MAP  # queries, fails
        # The next two sightings do not even query the index.
        assert matcher.update(far).status is MatchStatus.OFF_MAP
        assert matcher.update(far).status is MatchStatus.OFF_MAP
        # Moving back next to the road: re-acquired on a query tick.
        results = [matcher.update((100.0, 5.0)) for _ in range(4)]
        assert any(r.is_matched for r in results)
        assert matcher.statistics()["reacquisitions"] >= 1


class TestTracking:
    def test_stays_on_link_while_matched(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        first = matcher.update((20.0, 3.0), heading=(1.0, 0.0))
        second = matcher.update((60.0, -4.0), heading=(1.0, 0.0))
        assert second.status is MatchStatus.MATCHED
        assert second.link_id == first.link_id
        assert second.offset > first.offset

    def test_forward_tracking_at_link_end(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        # The straight road has links of 500 m; walk past the first link end.
        # The transition is delayed (paper Sec. 3): right after the end the
        # position still matches the old link within the tolerance, so the
        # switch only happens once the object is clearly beyond it.
        first = matcher.update((450.0, 2.0), heading=(1.0, 0.0))
        just_past = matcher.update((520.0, 2.0), heading=(1.0, 0.0))
        assert just_past.is_matched
        assert just_past.link_id == first.link_id  # still the delayed old link
        beyond = matcher.update((580.0, 2.0), heading=(1.0, 0.0))
        assert beyond.is_matched
        assert beyond.link_id != first.link_id
        stats = matcher.statistics()
        assert stats["forward_tracks"] >= 1

    def test_forward_tracking_chooses_turn_arm(self, t_map):
        matcher = IncrementalMapMatcher(t_map, MatcherConfig(tolerance=30.0))
        # Approach the junction from the west, then turn north.
        matcher.update((-200.0, 1.0), heading=(1.0, 0.0))
        matcher.update((-50.0, 1.0), heading=(1.0, 0.0))
        result = matcher.update((2.0, 80.0), heading=(0.0, 1.0))
        assert result.is_matched
        link = t_map.link(result.link_id)
        # The matched link leads towards the north arm.
        assert link.end_position[1] > 100.0 or link.start_position[1] > 100.0

    def test_backward_tracking_recovers_wrong_choice(self, t_map):
        matcher = IncrementalMapMatcher(
            t_map, MatcherConfig(tolerance=25.0, end_proximity=40.0)
        )
        # Approach the junction and (deliberately) continue east first.
        matcher.update((-300.0, 1.0), heading=(1.0, 0.0))
        matcher.update((-100.0, 1.0), heading=(1.0, 0.0))
        east = matcher.update((60.0, 1.0), heading=(1.0, 0.0))
        assert east.is_matched
        # The object actually went north: far from the east arm, within reach
        # of the north arm. Backward tracking should recover it.
        north = matcher.update((1.0, 120.0), heading=(0.0, 1.0))
        assert north.is_matched
        link = t_map.link(north.link_id)
        assert abs(link.start_position[0]) < 1e-6 or abs(link.end_position[0]) < 1e-6
        assert matcher.statistics()["backward_tracks"] + matcher.statistics()["forward_tracks"] >= 1

    def test_off_map_after_leaving_network(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        matcher.update((100.0, 0.0), heading=(1.0, 0.0))
        result = matcher.update((100.0, 400.0), heading=(0.0, 1.0))
        assert result.status is MatchStatus.OFF_MAP
        assert matcher.current_link is None
        assert matcher.statistics()["off_map_events"] >= 1

    def test_direction_flip_on_u_turn(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map, MatcherConfig(tolerance=30.0))
        first = matcher.update((300.0, 2.0), heading=(1.0, 0.0))
        # The object turns around and drives back west along the same road.
        second = matcher.update((280.0, 2.0), heading=(-1.0, 0.0))
        assert second.is_matched
        assert second.link_id != first.link_id
        assert matcher.statistics()["direction_flips"] >= 1

    def test_reset_clears_state(self, straight_map):
        matcher = IncrementalMapMatcher(straight_map)
        matcher.update((100.0, 0.0))
        assert matcher.current_link is not None
        matcher.reset()
        assert matcher.current_link is None


class TestCorrectedPosition:
    def test_matched_position_is_projection(self, curved_map):
        matcher = IncrementalMapMatcher(curved_map, MatcherConfig(tolerance=40.0))
        result = matcher.update((500.0, 20.0), heading=(1.0, 0.0))
        assert result.is_matched
        np.testing.assert_allclose(result.position, [500.0, 0.0], atol=1e-6)
        assert result.offset == pytest.approx(500.0)

    def test_offset_within_link_length(self, curved_map):
        matcher = IncrementalMapMatcher(curved_map, MatcherConfig(tolerance=40.0))
        result = matcher.update((980.0, -10.0), heading=(1.0, 0.0))
        assert result.is_matched
        link = curved_map.link(result.link_id)
        assert 0.0 <= result.offset <= link.length


class TestAdvanceAtLinkEnd:
    """The opt-in segmentation-transparent forward tracking (ingest PR)."""

    def _chain_maps(self):
        """The same straight 300 m road as 1 link vs 3 chained links."""
        from repro.roadmap.builder import RoadMapBuilder

        merged = RoadMapBuilder()
        merged.add_intersection((0.0, 0.0), node_id=0)
        merged.add_intersection((300.0, 0.0), node_id=3)
        merged.add_two_way_link(0, 3, shape_points=[(100.0, 0.0), (200.0, 0.0)])

        split = RoadMapBuilder()
        for i in range(4):
            split.add_intersection((i * 100.0, 0.0), node_id=i)
        for a, b in ((0, 1), (1, 2), (2, 3)):
            split.add_two_way_link(a, b)
        return merged.build(), split.build()

    def _walk(self, roadmap, advance):
        config = MatcherConfig(tolerance=30.0, advance_at_link_end=advance)
        matcher = IncrementalMapMatcher(roadmap, config)
        positions = []
        for x in np.arange(5.0, 296.0, 13.0):
            result = matcher.update((x, 2.0), heading=(1.0, 0.0))
            assert result.is_matched
            positions.append(result.position)
        return np.array(positions)

    def test_default_sticks_at_chain_node(self):
        _, split = self._chain_maps()
        positions = self._walk(split, advance=False)
        # Sightings just past x=100 stay clamped to the first link's end.
        clamped = positions[np.isclose(positions[:, 0], 100.0)]
        assert len(clamped) >= 1

    def test_advance_makes_matching_segmentation_invariant(self):
        merged, split = self._chain_maps()
        on_merged = self._walk(merged, advance=True)
        on_split = self._walk(split, advance=True)
        np.testing.assert_allclose(on_merged, on_split, atol=1e-9)
        # And no clamping artefacts: every matched x tracks the sighting.
        xs = np.arange(5.0, 296.0, 13.0)
        np.testing.assert_allclose(on_split[:, 0], xs, atol=1e-6)

    def test_advance_spanning_multiple_short_links(self):
        """One sighting step can pass several links; the loop follows."""
        from repro.roadmap.builder import RoadMapBuilder

        builder = RoadMapBuilder()
        for i in range(7):
            builder.add_intersection((i * 20.0, 0.0), node_id=i)
        for a in range(6):
            builder.add_two_way_link(a, a + 1)
        roadmap = builder.build()
        config = MatcherConfig(tolerance=30.0, advance_at_link_end=True)
        matcher = IncrementalMapMatcher(roadmap, config)
        first = matcher.update((5.0, 1.0), heading=(1.0, 0.0))
        assert first.is_matched
        # 55 m ahead: passes links 0-1 and 1-2 entirely, lands on 2-3.
        result = matcher.update((62.0, 1.0), heading=(1.0, 0.0))
        assert result.is_matched
        assert result.position[0] == pytest.approx(62.0, abs=1e-6)
        link = roadmap.link(result.link_id)
        assert {link.from_node, link.to_node} == {3, 4} or {
            link.from_node, link.to_node
        } == {2, 3}

    def test_advance_does_not_cross_a_junction_blindly(self):
        """At a real junction the best-matching arm wins, as before."""
        from repro.roadmap.builder import RoadMapBuilder

        builder = RoadMapBuilder()
        builder.add_intersection((0.0, 0.0), node_id=0)
        builder.add_intersection((100.0, 0.0), node_id=1)
        builder.add_intersection((200.0, 0.0), node_id=2)
        builder.add_intersection((100.0, 100.0), node_id=3)
        builder.add_two_way_link(0, 1)
        builder.add_two_way_link(1, 2)
        builder.add_two_way_link(1, 3)
        roadmap = builder.build()
        config = MatcherConfig(tolerance=30.0, advance_at_link_end=True)
        matcher = IncrementalMapMatcher(roadmap, config)
        matcher.update((90.0, 1.0), heading=(1.0, 0.0))
        # The object turns north.  The first sighting still projects onto
        # the interior of the current link within um (paper behaviour, no
        # end-clamp involved), so the matcher may keep it; by the next
        # sighting the distance exceeds um and the northern arm must win.
        first = matcher.update((99.0, 25.0), heading=(0.0, 1.0))
        assert first.is_matched
        result = matcher.update((99.0, 45.0), heading=(0.0, 1.0))
        assert result.is_matched
        link = roadmap.link(result.link_id)
        assert 3 in (link.from_node, link.to_node)
