"""Unit tests for the Wolfson-style adaptive protocols (sdr, adr, dtdr)."""

import numpy as np
import pytest

from repro.protocols.adaptive import (
    AdaptiveDeadReckoning,
    DisconnectionDetectionDeadReckoning,
    SpeedDeadReckoning,
)
from repro.protocols.linear import LinearPredictionProtocol
from repro.traces.trace import Trace


def feed(protocol, trace):
    messages = []
    for sample in trace:
        message = protocol.observe(sample.time, sample.position)
        if message is not None:
            messages.append(message)
    return messages


@pytest.fixture()
def zigzag_trace():
    """A trace alternating heading every 30 s (forces periodic updates)."""
    times = np.arange(0.0, 301.0)
    xs = np.cumsum(np.where((times // 30) % 2 == 0, 15.0, 10.0))
    ys = np.cumsum(np.where((times // 30) % 2 == 0, 0.0, 10.0))
    return Trace(times, np.column_stack((xs, ys)))


class TestSpeedDeadReckoning:
    def test_equivalent_to_linear_with_same_threshold(self, l_shaped_trace):
        sdr = feed(SpeedDeadReckoning(threshold=80.0, estimation_window=2), l_shaped_trace)
        linear = feed(LinearPredictionProtocol(accuracy=80.0, estimation_window=2), l_shaped_trace)
        assert len(sdr) == len(linear)

    def test_name(self):
        assert "sdr" in SpeedDeadReckoning(threshold=50.0).name


class TestAdaptiveDeadReckoning:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptiveDeadReckoning(initial_threshold=100.0, update_cost=0.0)
        with pytest.raises(ValueError):
            AdaptiveDeadReckoning(initial_threshold=100.0, deviation_cost=0.0)
        with pytest.raises(ValueError):
            AdaptiveDeadReckoning(initial_threshold=100.0, min_threshold=0.0)
        with pytest.raises(ValueError):
            AdaptiveDeadReckoning(
                initial_threshold=100.0, min_threshold=50.0, max_threshold=10.0
            )

    def test_threshold_adapts(self, zigzag_trace):
        protocol = AdaptiveDeadReckoning(
            initial_threshold=100.0, update_cost=1.0, deviation_cost=0.001,
            estimation_window=2,
        )
        initial = protocol.current_threshold(0.0)
        feed(protocol, zigzag_trace)
        assert protocol.current_threshold(zigzag_trace.duration) != initial

    def test_threshold_respects_bounds(self, zigzag_trace):
        protocol = AdaptiveDeadReckoning(
            initial_threshold=100.0, update_cost=1.0, deviation_cost=0.001,
            min_threshold=40.0, max_threshold=150.0, estimation_window=2,
        )
        feed(protocol, zigzag_trace)
        assert 40.0 <= protocol.current_threshold(zigzag_trace.duration) <= 150.0

    def test_higher_update_cost_means_fewer_updates(self, zigzag_trace):
        cheap_updates = feed(
            AdaptiveDeadReckoning(
                initial_threshold=100.0, update_cost=0.2, deviation_cost=0.01,
                estimation_window=2,
            ),
            zigzag_trace,
        )
        expensive_updates = feed(
            AdaptiveDeadReckoning(
                initial_threshold=100.0, update_cost=50.0, deviation_cost=0.01,
                estimation_window=2,
            ),
            zigzag_trace,
        )
        assert len(expensive_updates) <= len(cheap_updates)

    def test_reset_restores_initial_threshold(self, zigzag_trace):
        protocol = AdaptiveDeadReckoning(initial_threshold=123.0, estimation_window=2)
        feed(protocol, zigzag_trace)
        protocol.reset()
        assert protocol.current_threshold(0.0) == 123.0


class TestDisconnectionDetection:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DisconnectionDetectionDeadReckoning(initial_threshold=100.0, decay_time=0.0)
        with pytest.raises(ValueError):
            DisconnectionDetectionDeadReckoning(initial_threshold=100.0, floor_fraction=0.0)

    def test_threshold_decays_with_silence(self):
        protocol = DisconnectionDetectionDeadReckoning(
            initial_threshold=100.0, decay_time=100.0, floor_fraction=0.2,
            estimation_window=2,
        )
        protocol.observe(0.0, (0.0, 0.0))
        assert protocol.current_threshold(0.0) == pytest.approx(100.0)
        assert protocol.current_threshold(50.0) == pytest.approx(50.0)
        assert protocol.current_threshold(1000.0) == pytest.approx(20.0)

    def test_threshold_without_reports_is_initial(self):
        protocol = DisconnectionDetectionDeadReckoning(initial_threshold=80.0)
        assert protocol.current_threshold(500.0) == 80.0

    def test_more_updates_than_fixed_threshold(self, zigzag_trace):
        fixed = feed(SpeedDeadReckoning(threshold=100.0, estimation_window=2), zigzag_trace)
        decaying = feed(
            DisconnectionDetectionDeadReckoning(
                initial_threshold=100.0, decay_time=120.0, floor_fraction=0.2,
                estimation_window=2,
            ),
            zigzag_trace,
        )
        assert len(decaying) >= len(fixed)
