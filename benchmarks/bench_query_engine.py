"""Query-engine throughput: columnar kernels vs scalar scans vs linear scans.

The columnar fast path rebuilt the per-shard read path around contiguous
NumPy columns (positions, cell keys, an id table) with vectorised kernels
for all three query kinds.  This benchmark tracks a 10k-object fleet on
three backends —

* the seed's O(fleet) per-query **linear scans** (``LocationServer``),
* the previous **scalar** sharded engine (``LocationService`` with
  ``engine="scalar"``: per-record grid-index scans), and
* the **columnar** sharded engine (the default),

— replays the same mixed query workload (range / k-nearest / geofence in
coalesced waves, several waves per simulated timestamp) against each, and

* asserts every answer is *identical* across all three paths,
* requires the columnar engine to deliver at least 3x the query throughput
  of the scalar sharded engine (and 5x the linear baseline),
* requires the per-shard load imbalance to stay at or below the recorded
  ceiling, and
* records everything (including per-shard load counters and the previous
  1k-object point as ``history``) in ``BENCH_query_engine.json`` at the
  repository root.

The fleet size, shard count and query volume can be tuned via
``REPRO_BENCH_QE_OBJECTS`` / ``REPRO_BENCH_QE_SHARDS`` /
``REPRO_BENCH_QE_QUERIES`` for quick local runs.
``REPRO_BENCH_QE_MIN_SPEEDUP`` lowers the *asserted* columnar-vs-scalar
floor (CI smoke on noisy shared runners gates on "clearly beats the scalar
engine" rather than the full 3x target, which is still recorded in the
artifact).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.protocols.base import ObjectState, UpdateMessage, UpdateReason
from repro.protocols.prediction import LinearPrediction
from repro.service.facade import LocationService
from repro.service.queries import geofence_query, nearest_object_query, range_query
from repro.service.server import LocationServer
from repro.sim.workload import QueryWorkload, WorkloadExecutor

from conftest import run_once

_RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_query_engine.json")

#: Spatial extent of the synthetic fleet (a ~20 km urban region).
_EXTENT_M = 20_000.0
#: The throughput the columnar engine must deliver over the scalar engine.
_REQUIRED_SPEEDUP = 3.0
#: The throughput the columnar engine must deliver over the linear scans.
_REQUIRED_SPEEDUP_VS_LINEAR = 5.0
#: Recorded per-shard object-count imbalance ceiling (max/mean).
_MAX_LOAD_IMBALANCE = 1.3

#: The previous committed 1k-object point, kept for the perf trajectory.
#: "sharded" there is today's ``engine="scalar"`` path.
_HISTORY = [
    {
        "objects": 1000,
        "shards": 4,
        "queries": 600,
        "linear_scan_seconds": 1.1965,
        "sharded_seconds": 0.1377,
        "speedup_vs_linear": 8.687,
        "required_speedup_vs_linear": 5.0,
        "linear_queries_per_second": 504.9,
        "sharded_queries_per_second": 4503.4,
        "load_imbalance": 1.088,
        "answers_identical": True,
    }
]


def _build_fleet(n_objects: int, seed: int = 0):
    """One update per object: positions and velocities over the region."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, _EXTENT_M, size=(n_objects, 2))
    velocities = rng.uniform(-20.0, 20.0, size=(n_objects, 2))
    messages = []
    for i in range(n_objects):
        state = ObjectState(
            time=0.0,
            position=positions[i],
            velocity=velocities[i],
            speed=float(np.hypot(*velocities[i])),
        )
        messages.append(
            (
                f"obj-{i:05d}",
                UpdateMessage(sequence=0, state=state, reason=UpdateReason.THRESHOLD),
            )
        )
    return messages


def _replay(backend, workload: QueryWorkload, times, queries_per_wave: int):
    """Replay the workload as coalesced waves; return (executor, wall seconds)."""
    executor = WorkloadExecutor(
        workload,
        backend,
        BoundingBox(0.0, 0.0, _EXTENT_M, _EXTENT_M),
        record_answers=True,
    )
    t0 = time.perf_counter()
    for t in times:
        executor.issue_wave(t, queries_per_wave)
    return executor, time.perf_counter() - t0


def compare_query_paths(
    n_objects: int = 10_000, shards: int = 4, n_queries: int = 600, seed: int = 0
):
    """Time linear vs scalar-sharded vs columnar-sharded; return the record."""
    messages = _build_fleet(n_objects, seed=seed)

    single = LocationServer()
    scalar = LocationService(
        n_shards=shards, region_size=_EXTENT_M / 8.0, engine="scalar"
    )
    columnar = LocationService(n_shards=shards, region_size=_EXTENT_M / 8.0)
    for backend in (single, scalar, columnar):
        for object_id, _ in messages:
            backend.register_object(
                object_id, prediction=LinearPrediction(), accuracy=100.0
            )
    for object_id, message in messages:
        single.receive_update(object_id, message, 0.0)
    scalar.ingest_batch(messages, 0.0)
    columnar.ingest_batch(messages, 0.0)

    # Queries arrive in waves: many application queries per simulated
    # timestamp (the live server's coalesced batches), a handful of
    # distinct timestamps (each forces a full incremental re-sync of every
    # shard's index on the service paths).
    times = [0.0, 15.0, 30.0, 45.0, 60.0]
    queries_per_wave = max(1, n_queries // len(times))
    workload = QueryWorkload(
        queries_per_tick=1.0,
        mix={"range": 1.0, "nearest": 1.0, "geofence": 1.0},
        k=5,
        range_extent_m=1500.0,
        geofence_radius_m=800.0,
        seed=seed,
    )

    linear_exec, linear_seconds = _replay(single, workload, times, queries_per_wave)
    scalar_exec, scalar_seconds = _replay(scalar, workload, times, queries_per_wave)
    columnar_exec, columnar_seconds = _replay(
        columnar, workload, times, queries_per_wave
    )

    identical = linear_exec.answers == scalar_exec.answers == columnar_exec.answers
    speedup = scalar_seconds / columnar_seconds if columnar_seconds > 0 else None
    speedup_vs_linear = (
        linear_seconds / columnar_seconds if columnar_seconds > 0 else None
    )
    stats = columnar.service_stats()

    return {
        "benchmark": "columnar_vs_scalar_vs_linear",
        "objects": n_objects,
        "shards": shards,
        "queries": columnar_exec.report.queries,
        "query_waves": len(times),
        "distinct_times": len(times),
        "mix": dict(workload.mix),
        "required_speedup": _REQUIRED_SPEEDUP,
        "required_speedup_vs_linear": _REQUIRED_SPEEDUP_VS_LINEAR,
        "max_load_imbalance": _MAX_LOAD_IMBALANCE,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "linear_scan_seconds": round(linear_seconds, 4),
        "scalar_sharded_seconds": round(scalar_seconds, 4),
        "columnar_seconds": round(columnar_seconds, 4),
        "speedup": round(speedup, 3) if speedup else None,
        "speedup_vs_linear": round(speedup_vs_linear, 3) if speedup_vs_linear else None,
        "linear_queries_per_second": round(linear_exec.report.queries_per_second, 1),
        "scalar_queries_per_second": round(scalar_exec.report.queries_per_second, 1),
        "columnar_queries_per_second": round(
            columnar_exec.report.queries_per_second, 1
        ),
        "answers_identical": identical,
        "hits": columnar_exec.report.hits,
        "handoffs": stats["handoffs"],
        "load_imbalance": round(stats["load_imbalance"], 3),
        "per_shard": stats["per_shard"],
        "history": _HISTORY,
    }


def _print_record(record):
    print(
        json.dumps(
            {
                k: v
                for k, v in record.items()
                if k not in ("per_shard", "machine", "history")
            },
            indent=2,
        )
    )


def _write_record(record):
    with open(_RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.normpath(_RESULT_PATH)}")


def _env_int(name, default):
    return int(os.environ.get(name, default))


def _min_speedup() -> float:
    """The asserted columnar-vs-scalar floor (default: the full 3x target)."""
    return float(os.environ.get("REPRO_BENCH_QE_MIN_SPEEDUP", _REQUIRED_SPEEDUP))


def _assert_record(record):
    assert record["answers_identical"], "engine answers diverge across the paths"
    floor = _min_speedup()
    assert record["speedup"] >= floor, (
        f"columnar speedup {record['speedup']}x over the scalar engine is "
        f"below the {floor}x floor"
    )
    assert record["load_imbalance"] <= _MAX_LOAD_IMBALANCE, (
        f"load imbalance {record['load_imbalance']} exceeds the "
        f"{_MAX_LOAD_IMBALANCE} ceiling"
    )


def test_query_engine_speedup(benchmark):
    record = run_once(
        benchmark,
        compare_query_paths,
        n_objects=_env_int("REPRO_BENCH_QE_OBJECTS", 10_000),
        shards=_env_int("REPRO_BENCH_QE_SHARDS", 4),
        n_queries=_env_int("REPRO_BENCH_QE_QUERIES", 600),
    )
    print()
    _print_record(record)
    _write_record(record)
    _assert_record(record)


def test_linear_reference_agreement_small():
    """Tiny cross-check runnable without the benchmark harness."""
    messages = _build_fleet(50, seed=3)
    single = LocationServer()
    services = [
        LocationService(n_shards=3, region_size=4000.0),
        LocationService(n_shards=3, region_size=4000.0, engine="scalar"),
    ]
    for backend in [single] + services:
        for object_id, _ in messages:
            backend.register_object(object_id, prediction=LinearPrediction())
    for object_id, message in messages:
        single.receive_update(object_id, message, 0.0)
    for service in services:
        service.ingest_batch(messages, 0.0)
    box = BoundingBox(2000.0, 2000.0, 9000.0, 8000.0)
    for service in services:
        for t in (0.0, 20.0):
            assert service.range_query(box, t) == range_query(single, box, t)
            assert service.nearest_objects(
                (5000.0, 5000.0), t, k=5
            ) == nearest_object_query(single, (5000.0, 5000.0), t, k=5)
            assert service.geofence_query(
                (5000.0, 5000.0), 2500.0, t
            ) == geofence_query(single, (5000.0, 5000.0), 2500.0, t)


if __name__ == "__main__":  # pragma: no cover - manual / CI smoke entry point
    record = compare_query_paths(
        n_objects=_env_int("REPRO_BENCH_QE_OBJECTS", 10_000),
        shards=_env_int("REPRO_BENCH_QE_SHARDS", 4),
        n_queries=_env_int("REPRO_BENCH_QE_QUERIES", 600),
    )
    _print_record(record)
    _write_record(record)
    _assert_record(record)
