"""E6 — Figure 9: city traffic.

Same protocol comparison as Figure 7 for the city scenario.  The paper's
result: dead reckoning still helps (up to ~63% fewer updates than
distance-based reporting), but the advantage of the map over the line is
smaller than on the freeway because of the frequent intersections.
"""

from repro.experiments.figures import figure9

from conftest import run_once
from figure_common import assert_figure_shape, print_figure


def test_figure9_city(benchmark, scale):
    figure = run_once(benchmark, figure9, scale=scale)
    print_figure(figure, "Fig. 9 — city traffic")
    assert_figure_shape(figure, map_should_win=False)
    assert figure.reduction_vs_baseline("linear") >= 40.0
    # Map-based DR does not fall behind linear DR by much anywhere on the sweep.
    map_rates = figure.series["map"].updates_per_hour
    linear_rates = figure.series["linear"].updates_per_hour
    assert all(m <= l * 1.35 for m, l in zip(map_rates, linear_rates))
