"""Contraction-hierarchy correctness: CH == Dijkstra, bit for bit.

The contract under test is the strongest one the planner makes: on any
graph, for any query, the hierarchy's bidirectional upward search returns
*exactly* what the tie-broken reference Dijkstra returns — same
reachability verdict, bit-identical cost, identical tie key, identical
link sequence.  The suite exercises it across a seeded random-graph family
(mixed one-way/two-way, both edge weights), a maximally tie-rich uniform
grid, and the persistence round-trip through the compiled-map cache.
"""

import json
import random

import pytest

from repro.ingest.cache import hierarchy_path, load_or_build_hierarchy
from repro.roadmap.builder import RoadMapBuilder
from repro.roadmap.elements import RoadClass
from repro.roadmap.generators import city_grid_map
from repro.roadmap.hierarchy import (
    ContractionHierarchy,
    RoutingGraph,
    dijkstra_path,
    link_tie_key,
)
from repro.roadmap.routing import RoutePlanner

_CLASSES = (
    RoadClass.MOTORWAY,
    RoadClass.PRIMARY,
    RoadClass.SECONDARY,
    RoadClass.RESIDENTIAL,
)


def random_roadmap(seed: int, rows: int = 6, cols: int = 7, extra_chords: int = 8):
    """A seeded random road network with one-way edges and varied speeds.

    Grid-adjacent nodes are connected with high probability (so most pairs
    are reachable and witness searches have real work to do), a handful of
    longer chords are thrown in, and roughly a quarter of all connections
    are one-way.  Positions are jittered, so lengths are unique and
    ``length`` / ``travel_time`` give genuinely different optima.
    """
    rng = random.Random(seed)
    builder = RoadMapBuilder()
    for row in range(rows):
        for col in range(cols):
            builder.add_intersection(
                (
                    col * 120.0 + rng.uniform(-25.0, 25.0),
                    row * 120.0 + rng.uniform(-25.0, 25.0),
                ),
                node_id=row * cols + col,
            )

    def connect(a: int, b: int) -> None:
        road_class = rng.choice(_CLASSES)
        speed = rng.uniform(5.0, 35.0)
        if rng.random() < 0.25:
            builder.add_link(a, b, road_class=road_class, speed_limit=speed)
        else:
            builder.add_two_way_link(a, b, road_class=road_class, speed_limit=speed)

    for row in range(rows):
        for col in range(cols):
            nid = row * cols + col
            if col + 1 < cols and rng.random() < 0.9:
                connect(nid, nid + 1)
            if row + 1 < rows and rng.random() < 0.9:
                connect(nid, nid + cols)
    n = rows * cols
    for _ in range(extra_chords):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            connect(a, b)
    return builder.build()


def assert_identical(reference, candidate, context=""):
    """The full bit-identity contract between two planned paths."""
    assert (reference is None) == (candidate is None), context
    if reference is None:
        return
    assert candidate.cost == reference.cost, context
    assert candidate.tie == reference.tie, context
    assert candidate.links == reference.links, context
    assert candidate.nodes == reference.nodes, context


class TestCHEqualsDijkstra:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("weight", ["length", "travel_time"])
    def test_random_graph_family(self, seed, weight):
        roadmap = random_roadmap(seed)
        graph = RoutingGraph.from_roadmap(roadmap, weight)
        hierarchy = ContractionHierarchy.build(graph)
        rng = random.Random(1000 + seed)
        ids = graph.node_ids
        for _ in range(80):
            source, target = rng.choice(ids), rng.choice(ids)
            assert_identical(
                dijkstra_path(graph, source, target),
                hierarchy.query(source, target),
                context=f"seed={seed} weight={weight} {source}->{target}",
            )

    def test_tie_rich_uniform_grid(self):
        # Zero jitter: every monotone staircase between two corners costs
        # exactly the same.  Only the composite (cost, tie-key) weight
        # makes the optimum unique — this is where tie-break determinism
        # is load-bearing, not decorative.
        roadmap = city_grid_map(rows=6, cols=6, spacing_m=200.0, jitter_m=0.0, seed=0)
        graph = RoutingGraph.from_roadmap(roadmap, "length")
        hierarchy = ContractionHierarchy.build(graph)
        ids = graph.node_ids
        for source in ids[::3]:
            for target in ids[::4]:
                assert_identical(
                    dijkstra_path(graph, source, target),
                    hierarchy.query(source, target),
                    context=f"{source}->{target}",
                )

    def test_unreachable_pairs_agree(self):
        # Two disconnected components: both engines must say "no path".
        builder = RoadMapBuilder()
        for nid, pos in enumerate([(0, 0), (100, 0), (5000, 5000), (5100, 5000)]):
            builder.add_intersection(pos, node_id=nid)
        builder.add_two_way_link(0, 1)
        builder.add_two_way_link(2, 3)
        graph = RoutingGraph.from_roadmap(builder.build(), "length")
        hierarchy = ContractionHierarchy.build(graph)
        assert dijkstra_path(graph, 0, 2) is None
        assert hierarchy.query(0, 2) is None
        assert_identical(dijkstra_path(graph, 0, 1), hierarchy.query(0, 1))

    def test_trivial_query(self):
        roadmap = random_roadmap(0)
        graph = RoutingGraph.from_roadmap(roadmap, "length")
        hierarchy = ContractionHierarchy.build(graph)
        path = hierarchy.query(5, 5)
        assert path.cost == 0.0 and path.links == [] and path.nodes == [5]

    def test_oneway_asymmetry_preserved(self):
        # a -> b exists, b -> a must route the long way (or not at all).
        builder = RoadMapBuilder()
        for nid, pos in enumerate([(0, 0), (100, 0), (100, 100), (0, 100)]):
            builder.add_intersection(pos, node_id=nid)
        builder.add_link(0, 1)  # one-way
        builder.add_two_way_link(1, 2)
        builder.add_two_way_link(2, 3)
        builder.add_two_way_link(3, 0)
        graph = RoutingGraph.from_roadmap(builder.build(), "length")
        hierarchy = ContractionHierarchy.build(graph)
        forward = hierarchy.query(0, 1)
        backward = hierarchy.query(1, 0)
        assert len(forward.links) == 1
        assert len(backward.links) == 3  # around the block
        assert_identical(dijkstra_path(graph, 1, 0), backward)


class TestHierarchyPersistence:
    def test_dict_round_trip(self):
        roadmap = random_roadmap(3)
        graph = RoutingGraph.from_roadmap(roadmap, "travel_time")
        built = ContractionHierarchy.build(graph)
        loaded = ContractionHierarchy.from_dict(graph, built.to_dict())
        assert loaded.num_shortcuts == built.num_shortcuts
        rng = random.Random(9)
        ids = graph.node_ids
        for _ in range(60):
            source, target = rng.choice(ids), rng.choice(ids)
            assert_identical(built.query(source, target), loaded.query(source, target))

    def test_from_dict_rejects_wrong_weight(self):
        roadmap = random_roadmap(4)
        length_graph = RoutingGraph.from_roadmap(roadmap, "length")
        time_graph = RoutingGraph.from_roadmap(roadmap, "travel_time")
        data = ContractionHierarchy.build(length_graph).to_dict()
        with pytest.raises(ValueError):
            ContractionHierarchy.from_dict(time_graph, data)

    def test_from_dict_rejects_different_graph(self):
        graph_a = RoutingGraph.from_roadmap(random_roadmap(5), "length")
        graph_b = RoutingGraph.from_roadmap(random_roadmap(6), "length")
        data = ContractionHierarchy.build(graph_a).to_dict()
        with pytest.raises(ValueError):
            ContractionHierarchy.from_dict(graph_b, data)

    def test_sidecar_cache_round_trip(self, tmp_path):
        graph = RoutingGraph.from_roadmap(random_roadmap(7), "length")
        entry = tmp_path / "somemap-0123456789abcdef.json"
        entry.write_text("{}", encoding="utf-8")  # the compiled-map entry
        first, cached_first = load_or_build_hierarchy(graph, entry)
        second, cached_second = load_or_build_hierarchy(graph, entry)
        assert not cached_first and cached_second
        sidecar = hierarchy_path(entry, "length")
        assert sidecar.exists()
        rng = random.Random(11)
        ids = graph.node_ids
        for _ in range(40):
            source, target = rng.choice(ids), rng.choice(ids)
            assert_identical(first.query(source, target), second.query(source, target))

    def test_corrupt_sidecar_is_rebuilt(self, tmp_path):
        graph = RoutingGraph.from_roadmap(random_roadmap(8), "length")
        entry = tmp_path / "somemap-feedfacecafebeef.json"
        sidecar = hierarchy_path(entry, "length")
        sidecar.write_text("{not json", encoding="utf-8")
        hierarchy, cached = load_or_build_hierarchy(graph, entry)
        assert not cached
        # The rebuilt sidecar must have replaced the corrupt one.
        json.loads(sidecar.read_text(encoding="utf-8"))
        assert hierarchy.query(graph.node_ids[0], graph.node_ids[-1]) is not None

    def test_no_entry_skips_persistence(self, tmp_path):
        graph = RoutingGraph.from_roadmap(random_roadmap(9), "length")
        _, cached = load_or_build_hierarchy(graph, None)
        assert not cached
        assert list(tmp_path.iterdir()) == []


class TestPlannerIntegration:
    @pytest.mark.parametrize("weight", ["length", "travel_time"])
    def test_planner_algos_agree_on_fixture_map(self, weight):
        city = city_grid_map(rows=5, cols=5, spacing_m=180.0, seed=2)
        reference = RoutePlanner(city, weight=weight)
        candidate = RoutePlanner(city, weight=weight, algo="ch")
        ids = sorted(city.intersections)
        rng = random.Random(13)
        for _ in range(30):
            source, target = rng.choice(ids), rng.choice(ids)
            if source == target:
                continue
            expected = reference.shortest_route(source, target)
            actual = candidate.shortest_route(source, target)
            assert [l.id for l in actual.links] == [l.id for l in expected.links]

    def test_injected_hierarchy_must_match(self):
        city = city_grid_map(rows=4, cols=4, spacing_m=150.0, seed=3)
        other = city_grid_map(rows=5, cols=4, spacing_m=150.0, seed=3)
        hierarchy = RoutePlanner(other, algo="ch").build_hierarchy()
        with pytest.raises(ValueError):
            RoutePlanner(city, algo="ch", hierarchy=hierarchy)

    def test_invalid_algo_rejected(self):
        city = city_grid_map(rows=4, cols=4, spacing_m=150.0, seed=3)
        with pytest.raises(ValueError):
            RoutePlanner(city, algo="astar")

    def test_tie_keys_are_stable(self):
        # The per-link tie keys are part of the persisted-hierarchy and
        # golden-path contract: pin a few literal values.
        assert link_tie_key(0, 0) == link_tie_key(0, 0)
        assert link_tie_key(1, 2) != link_tie_key(2, 1)
        assert 0 <= link_tie_key(123456789, 987654321) < (1 << 40)
