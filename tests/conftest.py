"""Shared fixtures for the test suite.

Expensive fixtures (scenarios) are session-scoped and built at a small route
scale so the whole suite stays fast while still exercising the full pipeline.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.mobility.scenarios import (
    city_scenario,
    freeway_scenario,
    interurban_scenario,
    walking_scenario,
)
from repro.roadmap.builder import RoadMapBuilder
from repro.roadmap.elements import RoadClass
from repro.roadmap.generators import straight_road_map, t_junction_map
from repro.traces.trace import Trace


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current code instead of comparing",
    )


# --------------------------------------------------------------------------- #
# small road maps
# --------------------------------------------------------------------------- #
@pytest.fixture()
def straight_map():
    """A 2 km straight two-way road split into 4 links."""
    return straight_road_map(length_m=2000.0, n_links=4)


@pytest.fixture()
def t_map():
    """A T junction with 500 m arms."""
    return t_junction_map(arm_length_m=500.0)


@pytest.fixture()
def curved_map():
    """A two-link road with a 90-degree bend described by shape points."""
    builder = RoadMapBuilder()
    a = builder.add_intersection((0.0, 0.0)).id
    b = builder.add_intersection((1000.0, 0.0)).id
    c = builder.add_intersection((1000.0, 1000.0)).id
    builder.add_two_way_link(
        a,
        b,
        shape_points=[(250.0, 0.0), (500.0, 0.0), (750.0, 0.0)],
        road_class=RoadClass.SECONDARY,
    )
    builder.add_two_way_link(
        b,
        c,
        shape_points=[(1000.0, 250.0), (1000.0, 500.0), (1000.0, 750.0)],
        road_class=RoadClass.SECONDARY,
    )
    return builder.build()


# --------------------------------------------------------------------------- #
# simple traces
# --------------------------------------------------------------------------- #
@pytest.fixture()
def straight_trace():
    """Constant 20 m/s motion along +x for 60 seconds, 1 Hz."""
    times = np.arange(0.0, 61.0)
    positions = np.column_stack((times * 20.0, np.zeros_like(times)))
    return Trace(times, positions, name="straight")


@pytest.fixture()
def l_shaped_trace():
    """20 m/s along +x for 50 s, then along +y for 50 s (a sharp corner)."""
    times = np.arange(0.0, 101.0)
    xs = np.where(times <= 50.0, times * 20.0, 1000.0)
    ys = np.where(times <= 50.0, 0.0, (times - 50.0) * 20.0)
    return Trace(times, np.column_stack((xs, ys)), name="l-shaped")


# --------------------------------------------------------------------------- #
# scenarios (session scoped, small scale)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def tiny_freeway_scenario():
    """Freeway scenario at 5% scale (a few minutes of driving)."""
    return freeway_scenario(seed=0, scale=0.05)


@pytest.fixture(scope="session")
def tiny_city_scenario():
    """City scenario at 7% scale."""
    return city_scenario(seed=2, scale=0.07)


@pytest.fixture(scope="session")
def tiny_interurban_scenario():
    """Inter-urban scenario at 8% scale."""
    return interurban_scenario(seed=1, scale=0.08)


@pytest.fixture(scope="session")
def tiny_walking_scenario():
    """Walking scenario at 15% scale."""
    return walking_scenario(seed=3, scale=0.15)
