"""GPS sensor noise models.

The paper's traces were recorded with a Differential-GPS receiver accurate to
2-5 m.  The noise models here perturb a ground-truth trace to emulate such a
sensor.  Consumer GPS errors are *correlated* in time (the error wanders
slowly rather than jumping independently each second), which matters for the
protocols: correlated noise produces smooth, plausible-looking — but offset —
tracks, whereas white noise produces jitter that inflates estimated speeds.
Both models are provided.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from repro.traces.trace import Trace


class GpsNoiseModel(abc.ABC):
    """Base class of position-noise models."""

    @abc.abstractmethod
    def apply(self, trace: Trace) -> Trace:
        """Return a copy of *trace* with noisy positions."""

    @property
    @abc.abstractmethod
    def typical_error(self) -> float:
        """A representative 1-sigma position error in metres (the paper's ``up``)."""


class NoNoise(GpsNoiseModel):
    """Identity noise model (perfect sensor); useful for isolating protocol effects."""

    def apply(self, trace: Trace) -> Trace:
        return trace.with_positions(trace.positions.copy())

    @property
    def typical_error(self) -> float:
        return 0.0


class GaussianNoise(GpsNoiseModel):
    """Independent, zero-mean Gaussian noise on every sample.

    Parameters
    ----------
    sigma:
        Standard deviation per axis in metres.
    seed:
        Seed of the internal random generator.
    """

    def __init__(self, sigma: float = 3.0, seed: Optional[int] = None):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = float(sigma)
        self._rng = np.random.default_rng(seed)

    def apply(self, trace: Trace) -> Trace:
        noise = self._rng.normal(0.0, self.sigma, size=(len(trace), 2))
        return trace.with_positions(trace.positions + noise)

    @property
    def typical_error(self) -> float:
        return self.sigma


class GaussMarkovNoise(GpsNoiseModel):
    """First-order Gauss-Markov (exponentially correlated) position noise.

    The error on each axis follows ``e[k+1] = a * e[k] + w[k]`` with
    ``a = exp(-dt / correlation_time)`` and white driving noise ``w`` scaled so
    that the stationary standard deviation equals ``sigma``.  This reproduces
    the slowly wandering offset of real GPS receivers (multipath, atmospheric
    delays), which the paper's DGPS receiver exhibits at the 2-5 m level.

    Parameters
    ----------
    sigma:
        Stationary standard deviation per axis in metres.
    correlation_time:
        Time constant of the error process in seconds.
    seed:
        Seed of the internal random generator.
    """

    def __init__(
        self,
        sigma: float = 3.0,
        correlation_time: float = 60.0,
        seed: Optional[int] = None,
    ):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if correlation_time <= 0:
            raise ValueError("correlation_time must be positive")
        self.sigma = float(sigma)
        self.correlation_time = float(correlation_time)
        self._rng = np.random.default_rng(seed)

    def apply(self, trace: Trace) -> Trace:
        n = len(trace)
        times = trace.times
        errors = np.zeros((n, 2))
        if self.sigma > 0.0:
            errors[0] = self._rng.normal(0.0, self.sigma, size=2)
            for k in range(1, n):
                dt = float(times[k] - times[k - 1])
                a = math.exp(-dt / self.correlation_time)
                driving_sigma = self.sigma * math.sqrt(max(0.0, 1.0 - a * a))
                errors[k] = a * errors[k - 1] + self._rng.normal(
                    0.0, driving_sigma, size=2
                )
        return trace.with_positions(trace.positions + errors)

    @property
    def typical_error(self) -> float:
        return self.sigma


def dgps_noise(seed: Optional[int] = None) -> GaussMarkovNoise:
    """Convenience constructor matching the paper's Differential-GPS receiver.

    2-5 m accuracy is modelled as a 2.5 m stationary sigma with a one-minute
    correlation time.
    """
    return GaussMarkovNoise(sigma=2.5, correlation_time=60.0, seed=seed)
