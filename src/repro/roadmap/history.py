"""History-based map learning.

The paper's *history-based dead-reckoning* variant (Sec. 2) generates a map
from traces of past movements when no navigation map is available: "If the
movements are observed over a long time, the result is a map, which can be
used as in the map-based protocols."

:class:`HistoryMapLearner` implements a grid-occupancy learner: observed
positions are quantised into cells, consecutive observations connect the
cells, and the resulting cell graph is condensed into intersections (cells
whose degree differs from two) and links (chains of degree-two cells whose
centres become shape points).  The learned :class:`~repro.roadmap.graph.RoadMap`
plugs directly into the map-based protocol, and a
:class:`~repro.roadmap.probability.TurnProbabilityTable` can be learned from
the same data, yielding the user-specific or user-independent variants.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geo.vec import Vec2, as_vec, distance
from repro.roadmap.builder import RoadMapBuilder
from repro.roadmap.elements import RoadClass
from repro.roadmap.graph import RoadMap

Cell = Tuple[int, int]


class HistoryMapLearner:
    """Learns a road map from observed position sequences.

    Parameters
    ----------
    cell_size:
        Quantisation cell size in metres.  Should comfortably exceed the
        positioning noise (the paper's DGPS is 2-5 m) but stay below the
        distance between parallel roads; 25 m is a sensible default.
    min_cell_visits:
        Cells observed fewer times than this are discarded as noise before
        the map is extracted.
    road_class:
        Road class assigned to every learned link.
    speed_limit:
        Speed limit assigned to learned links, in m/s.  When omitted it is
        estimated from the maximum speed observed while traversing the data.
    """

    def __init__(
        self,
        cell_size: float = 25.0,
        min_cell_visits: int = 1,
        road_class: RoadClass = RoadClass.SECONDARY,
        speed_limit: Optional[float] = None,
    ):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self.min_cell_visits = int(min_cell_visits)
        self.road_class = road_class
        self.speed_limit = speed_limit
        self._visits: Dict[Cell, int] = defaultdict(int)
        self._position_sum: Dict[Cell, np.ndarray] = defaultdict(lambda: np.zeros(2))
        self._edges: Dict[Cell, Set[Cell]] = defaultdict(set)
        self._observed_max_speed = 0.0
        self._n_positions = 0

    # ------------------------------------------------------------------ #
    # data ingestion
    # ------------------------------------------------------------------ #
    def _cell_of(self, point: Vec2) -> Cell:
        p = as_vec(point)
        return (
            int(math.floor(p[0] / self.cell_size)),
            int(math.floor(p[1] / self.cell_size)),
        )

    def add_positions(
        self, positions: Iterable[Vec2], timestamps: Optional[Sequence[float]] = None
    ) -> None:
        """Feed one movement observation sequence (a trace) to the learner.

        ``timestamps`` (seconds, parallel to the positions) are only used to
        estimate an observed speed for the learned speed limit.
        """
        previous_cell: Optional[Cell] = None
        previous_point: Optional[np.ndarray] = None
        previous_time: Optional[float] = None
        for i, raw in enumerate(positions):
            point = as_vec(raw)
            cell = self._cell_of(point)
            self._visits[cell] += 1
            self._position_sum[cell] += point
            self._n_positions += 1
            if previous_cell is not None and cell != previous_cell:
                self._edges[previous_cell].add(cell)
                self._edges[cell].add(previous_cell)
            if timestamps is not None and previous_time is not None and previous_point is not None:
                dt = float(timestamps[i]) - previous_time
                if dt > 0:
                    self._observed_max_speed = max(
                        self._observed_max_speed, distance(point, previous_point) / dt
                    )
            previous_cell = cell
            previous_point = point
            previous_time = float(timestamps[i]) if timestamps is not None else None

    def add_trace(self, trace) -> None:
        """Feed a :class:`repro.traces.Trace` (duck-typed) to the learner."""
        self.add_positions(trace.positions, trace.times)

    # ------------------------------------------------------------------ #
    # map extraction
    # ------------------------------------------------------------------ #
    def _cell_center(self, cell: Cell) -> np.ndarray:
        """Mean of the observed positions in the cell (not the geometric centre)."""
        return self._position_sum[cell] / self._visits[cell]

    def _kept_cells(self) -> Set[Cell]:
        return {c for c, v in self._visits.items() if v >= self.min_cell_visits}

    def coverage_statistics(self) -> dict:
        """How much data the learner has seen so far."""
        kept = self._kept_cells()
        return {
            "positions": self._n_positions,
            "cells": len(self._visits),
            "kept_cells": len(kept),
            "observed_max_speed": self._observed_max_speed,
        }

    def build_map(self) -> RoadMap:
        """Extract the learned road map.

        Cells with degree other than two (junctions, dead ends) become
        intersections; maximal chains of degree-two cells between them become
        links whose shape points are the chain cells' mean positions.
        """
        kept = self._kept_cells()
        if not kept:
            raise ValueError("no observations recorded; cannot build a map")
        adjacency: Dict[Cell, List[Cell]] = {
            c: sorted(n for n in self._edges.get(c, ()) if n in kept) for c in kept
        }
        speed_limit = self.speed_limit
        if speed_limit is None:
            speed_limit = max(self._observed_max_speed, 1.0)

        def is_node(cell: Cell) -> bool:
            return len(adjacency[cell]) != 2

        node_cells = {c for c in kept if is_node(c)}
        if not node_cells:
            # The data forms one or more pure loops; promote an arbitrary but
            # deterministic cell per loop to a node so links can be anchored.
            node_cells = {min(kept)}

        builder = RoadMapBuilder()
        cell_to_node: Dict[Cell, int] = {}
        for cell in sorted(node_cells):
            cell_to_node[cell] = builder.add_intersection(self._cell_center(cell)).id

        visited_arcs: Set[Tuple[Cell, Cell]] = set()
        for start_cell in sorted(node_cells):
            for neighbour in adjacency[start_cell]:
                if (start_cell, neighbour) in visited_arcs:
                    continue
                chain = [start_cell, neighbour]
                visited_arcs.add((start_cell, neighbour))
                previous, current = start_cell, neighbour
                while current not in node_cells:
                    next_cells = [c for c in adjacency[current] if c != previous]
                    if not next_cells:
                        break
                    nxt = next_cells[0]
                    visited_arcs.add((current, nxt))
                    chain.append(nxt)
                    previous, current = current, nxt
                end_cell = chain[-1]
                if end_cell not in node_cells:
                    # A dangling chain that never reached a node (its tail was
                    # pruned by min_cell_visits); promote its end to a node.
                    cell_to_node[end_cell] = builder.add_intersection(
                        self._cell_center(end_cell)
                    ).id
                    node_cells.add(end_cell)
                visited_arcs.add((end_cell, chain[-2]))
                start_node = cell_to_node[start_cell]
                end_node = cell_to_node[end_cell]
                if start_node == end_node and len(chain) < 3:
                    continue
                shape = [self._cell_center(c) for c in chain[1:-1]]
                builder.add_two_way_link(
                    start_node,
                    end_node,
                    shape_points=shape,
                    road_class=self.road_class,
                    speed_limit=speed_limit,
                    name="learned",
                )
        return builder.build()
