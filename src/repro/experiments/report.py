"""Plain-text rendering of experiment results.

The original simulator visualised maps and updates graphically (Figures 3
and 6); in a headless reproduction the equivalents are ASCII tables and
simple ASCII line charts that can be printed from the benchmarks and the
examples, plus JSON export for further processing.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]], title: Optional[str] = None) -> str:
    """Render a list of dictionaries as a fixed-width ASCII table.

    All rows are expected to share the same keys; the key order of the first
    row defines the column order.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    columns = list(rows[0].keys())
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(_fmt(row.get(col))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            " | ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def format_series_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    x_label: str = "us [m]",
    y_label: str = "updates/h",
) -> str:
    """Render several y(x) series as a crude ASCII chart.

    Each series gets its own marker character; the legend maps markers to
    series names.  Intended for terminal output of the figure benchmarks,
    mirroring the plots of Figures 7-10.
    """
    if not x_values or not series:
        return "(no data)"
    markers = "*o+x#@%&"
    all_y = [y for ys in series.values() for y in ys]
    y_max = max(all_y) if all_y else 1.0
    y_max = y_max if y_max > 0 else 1.0
    x_min, x_max = min(x_values), max(x_values)
    x_span = (x_max - x_min) or 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    legend = []
    for idx, (name, ys) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        legend.append(f"{marker} = {name}")
        for x, y in zip(x_values, ys):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((1.0 - min(y, y_max) / y_max) * (height - 1)))
            grid[row][col] = marker

    lines = [f"{y_label} (max {y_max:.1f})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}")
    lines.extend(legend)
    return "\n".join(lines)


def to_json(data: object, indent: int = 2) -> str:
    """Serialise experiment output (tables, figures) to JSON text."""
    return json.dumps(data, indent=indent, default=_json_default)


def _json_default(value):
    try:
        import numpy as np

        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, (np.floating, np.integer)):
            return value.item()
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    if hasattr(value, "as_dict"):
        return value.as_dict()
    raise TypeError(f"cannot serialise {type(value)!r}")
